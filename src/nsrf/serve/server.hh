/**
 * @file
 * The sweep-serving daemon: a Unix-domain-socket server speaking
 * line-delimited JSON.
 *
 * Protocol (one JSON object per line, one reply line per request):
 *
 *   {"op":"ping"}
 *   {"op":"submit","cells":[{"app":"Gamteb","org":"nsf",
 *                            "events":20000}, ...]}
 *   {"op":"query","fingerprint":"<32 hex digits>"}
 *   {"op":"stats"}        – scheduler + cache counters as JSON
 *   {"op":"metrics"}      – the same counters as Prometheus text
 *   {"op":"shutdown"}     – ack, then drain and exit
 *
 * submit expands each cell spec (serve/spec.hh), admits every cell
 * through the single-flight scheduler, and waits — bounded by the
 * per-request timeout — for completion; the reply carries one entry
 * per cell with its fingerprint, how it was admitted, and the same
 * `"result":{...}` object the offline sweeps emit.  Rejected cells
 * (queue full) and timeouts are reported per cell so a client can
 * retry only what's missing.
 *
 * Shutdown is graceful: SIGINT (via requestStop) or a shutdown op
 * stops the accept loop, lets every open connection finish, and
 * leaves queued simulations to the scheduler's drain.
 */

#ifndef NSRF_SERVE_SERVER_HH
#define NSRF_SERVE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "nsrf/serve/cache.hh"
#include "nsrf/serve/json_in.hh"
#include "nsrf/serve/scheduler.hh"
#include "nsrf/stats/counters.hh"

namespace nsrf::stats
{
class JsonWriter;
}

namespace nsrf::serve
{

/** Daemon-level knobs (scheduler/cache size elsewhere). */
struct ServerConfig
{
    std::string socketPath;
    /** Budget for one request, submit waits included. */
    unsigned requestTimeoutMs = 120'000;
    /** Stop-flag poll granularity for accept/read loops. */
    unsigned pollIntervalMs = 200;
    /** A request line larger than this is rejected. */
    std::size_t maxLineBytes = 1u << 20;
    /** Cells one submit may expand to. */
    std::size_t maxCellsPerSubmit = 256;
};

/** Serves the scheduler + cache over a Unix domain socket. */
class Server
{
  public:
    Server(ServerConfig config, ResultCache *cache,
           BatchScheduler *scheduler);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind + listen.  @return false with @p why on failure. */
    bool start(std::string *why);

    /**
     * Accept and serve until requestStop() or a shutdown op; joins
     * every connection before returning.  @return an exit code.
     */
    int serve();

    /** Async-signal-safe stop request (the SIGINT handler). */
    void requestStop() { stop_.store(true); }

    /** Handle one request line (also the unit-test entry point). */
    std::string handleRequest(const std::string &line);

    /** The Prometheus-text form of every counter. */
    std::string metricsText() const;

    /**
     * Extra content appended by an upper layer (the fleet node):
     * the stats hook adds members to the stats reply object, the
     * metrics hook appends Prometheus text.  Install before
     * serving; both may be empty.
     */
    using StatsHook = std::function<void(stats::JsonWriter &)>;
    using MetricsHook = std::function<void(std::string &)>;
    void setStatsHook(StatsHook hook)
    {
        statsHook_ = std::move(hook);
    }
    void setMetricsHook(MetricsHook hook)
    {
        metricsHook_ = std::move(hook);
    }

  private:
    void handleConnection(int fd);
    std::string handleSubmit(const json::Value &request);
    std::string handleQuery(const json::Value &request);
    std::string handleStats();
    std::string errorReply(const std::string &op,
                           const std::string &message);

    ServerConfig config_;
    ResultCache *cache_;
    BatchScheduler *scheduler_;
    int listenFd_ = -1;
    std::atomic<bool> stop_{false};
    StatsHook statsHook_;
    MetricsHook metricsHook_;

    mutable std::mutex statsMutex_;
    stats::Counter connections_;
    stats::Counter requests_;
    stats::Counter badRequests_;
    stats::Counter timeouts_;
};

} // namespace nsrf::serve

#endif // NSRF_SERVE_SERVER_HH
