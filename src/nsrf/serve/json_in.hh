/**
 * @file
 * Minimal JSON reader for the serving wire protocol.
 *
 * stats::JsonWriter deliberately ships no reader — results files
 * are consumed by external tooling.  The daemon, however, must
 * parse the line-delimited JSON requests clients send, so this is
 * the matching reader: a strict recursive-descent parser into a
 * small Value tree covering exactly the JSON subset the protocol
 * uses (objects, arrays, strings, doubles, bools, null).  Depth is
 * bounded and errors carry a byte offset so malformed requests get
 * a useful rejection instead of a crash.
 */

#ifndef NSRF_SERVE_JSON_IN_HH
#define NSRF_SERVE_JSON_IN_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace nsrf::serve::json
{

/** One parsed JSON value. */
class Value
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    /**
     * Exact-integer sidecar for Number values.  When the source
     * token was a pure integer literal (no fraction, no exponent)
     * the parser records its digits exactly here, because `number`
     * alone silently rounds above 2^53 and config fields like
     * instruction caps are 64-bit.  `integralOverflow` marks
     * literals beyond uint64 range (magnitude is then meaningless).
     */
    bool integral = false;
    bool integralNegative = false;
    bool integralOverflow = false;
    std::uint64_t magnitude = 0;
    std::string string;
    std::vector<Value> array;
    /** Insertion-ordered; duplicate keys are a parse error. */
    std::vector<std::pair<std::string, Value>> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** @return the member named @p key, or null (objects only). */
    const Value *find(const std::string &key) const;

    /** Typed member accessors with defaults (missing/mistyped
     * members return @p dflt). */
    bool getBool(const std::string &key, bool dflt) const;
    double getNumber(const std::string &key, double dflt) const;
    std::string getString(const std::string &key,
                          const std::string &dflt) const;

    /**
     * @return the member as an unsigned integer; false when
     * missing.  fatal-free: mistyped/fractional/negative values
     * also return false so the caller can reject the request.
     *
     * Integer literals are taken through the exact path: every
     * value in [0, UINT64_MAX] round-trips digit-for-digit, and
     * literals outside that range are rejected rather than rounded
     * or wrapped.  Fraction/exponent spellings (e.g. "2e4") are
     * accepted only strictly below 2^53, where every integer is
     * uniquely representable in a double — from 2^53 up the
     * spelling has already lost precision, so it is rejected too.
     */
    bool getU64(const std::string &key, std::uint64_t *out) const;
};

/**
 * Parse @p text (one complete JSON document, surrounding
 * whitespace allowed).  @return false with @p why describing the
 * problem and its byte offset.
 */
bool parse(const std::string &text, Value *out, std::string *why);

} // namespace nsrf::serve::json

#endif // NSRF_SERVE_JSON_IN_HH
