#include "nsrf/serve/codec.hh"

#include <bit>
#include <cstdint>
#include <cstdio>
#include <map>

namespace nsrf::serve
{

namespace
{

constexpr const char *kMagic = "nsrf-result 1";

void
putU64(std::string &out, const char *key, std::uint64_t v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s=%llu\n", key,
                  static_cast<unsigned long long>(v));
    out += buf;
}

void
putDouble(std::string &out, const char *key, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s=%016llx\n", key,
                  static_cast<unsigned long long>(
                      std::bit_cast<std::uint64_t>(v)));
    out += buf;
}

/** Escape newlines/backslashes in the one free-text field. */
std::string
escapeText(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

bool
unescapeText(const std::string &s, std::string *out)
{
    out->clear();
    out->reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\') {
            *out += s[i];
            continue;
        }
        if (++i >= s.size())
            return false;
        if (s[i] == '\\')
            *out += '\\';
        else if (s[i] == 'n')
            *out += '\n';
        else
            return false;
    }
    return true;
}

bool
parseU64Field(const std::string &v, std::uint64_t *out)
{
    if (v.empty() || v.size() > 20)
        return false;
    std::uint64_t acc = 0;
    for (char c : v) {
        if (c < '0' || c > '9')
            return false;
        std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
        if (acc > (UINT64_MAX - digit) / 10)
            return false;
        acc = acc * 10 + digit;
    }
    *out = acc;
    return true;
}

bool
parseDoubleField(const std::string &v, double *out)
{
    if (v.size() != 16)
        return false;
    std::uint64_t bits = 0;
    for (char c : v) {
        std::uint64_t digit;
        if (c >= '0' && c <= '9')
            digit = static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            digit = static_cast<std::uint64_t>(c - 'a' + 10);
        else
            return false;
        bits = (bits << 4) | digit;
    }
    *out = std::bit_cast<double>(bits);
    return true;
}

bool
fail(std::string *why, const std::string &msg)
{
    if (why)
        *why = msg;
    return false;
}

} // namespace

std::string
encodeRunResult(const sim::RunResult &r)
{
    std::string out;
    out.reserve(640);
    out += kMagic;
    out += '\n';
    out += "regfileDescription=";
    out += escapeText(r.regfileDescription);
    out += '\n';
    putU64(out, "instructions", r.instructions);
    putU64(out, "contextSwitches", r.contextSwitches);
    putU64(out, "cycles", r.cycles);
    putU64(out, "regStallCycles", r.regStallCycles);
    putU64(out, "regsSpilled", r.regsSpilled);
    putU64(out, "regsReloaded", r.regsReloaded);
    putU64(out, "liveRegsReloaded", r.liveRegsReloaded);
    putU64(out, "readMisses", r.readMisses);
    putU64(out, "writeMisses", r.writeMisses);
    putU64(out, "cidEvictions", r.cidEvictions);
    putDouble(out, "meanActiveRegs", r.meanActiveRegs);
    putDouble(out, "maxActiveRegs", r.maxActiveRegs);
    putDouble(out, "meanResidentContexts", r.meanResidentContexts);
    putDouble(out, "meanUtilization", r.meanUtilization);
    putDouble(out, "maxUtilization", r.maxUtilization);
    return out;
}

bool
decodeRunResult(const std::string &text, sim::RunResult *out,
                std::string *why)
{
    std::map<std::string, std::string> fields;
    std::size_t pos = 0;
    bool first = true;
    while (pos < text.size()) {
        std::size_t nl = text.find('\n', pos);
        if (nl == std::string::npos)
            return fail(why, "unterminated line");
        std::string line = text.substr(pos, nl - pos);
        pos = nl + 1;
        if (first) {
            if (line != kMagic)
                return fail(why, "bad magic '" + line + "'");
            first = false;
            continue;
        }
        std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            return fail(why, "malformed line '" + line + "'");
        std::string key = line.substr(0, eq);
        if (!fields.emplace(key, line.substr(eq + 1)).second)
            return fail(why, "duplicate field '" + key + "'");
    }
    if (first)
        return fail(why, "empty payload");
    if (pos != text.size())
        return fail(why, "trailing bytes");

    sim::RunResult r;
    auto take = [&](const char *key, std::string *v) {
        auto it = fields.find(key);
        if (it == fields.end())
            return false;
        *v = it->second;
        fields.erase(it);
        return true;
    };
    auto takeU64 = [&](const char *key, std::uint64_t *dst) {
        std::string v;
        return take(key, &v) && parseU64Field(v, dst);
    };
    auto takeDouble = [&](const char *key, double *dst) {
        std::string v;
        return take(key, &v) && parseDoubleField(v, dst);
    };

    std::string desc;
    if (!take("regfileDescription", &desc) ||
        !unescapeText(desc, &r.regfileDescription)) {
        return fail(why, "bad regfileDescription");
    }
    if (!takeU64("instructions", &r.instructions) ||
        !takeU64("contextSwitches", &r.contextSwitches) ||
        !takeU64("cycles", &r.cycles) ||
        !takeU64("regStallCycles", &r.regStallCycles) ||
        !takeU64("regsSpilled", &r.regsSpilled) ||
        !takeU64("regsReloaded", &r.regsReloaded) ||
        !takeU64("liveRegsReloaded", &r.liveRegsReloaded) ||
        !takeU64("readMisses", &r.readMisses) ||
        !takeU64("writeMisses", &r.writeMisses) ||
        !takeU64("cidEvictions", &r.cidEvictions)) {
        return fail(why, "missing or malformed counter field");
    }
    if (!takeDouble("meanActiveRegs", &r.meanActiveRegs) ||
        !takeDouble("maxActiveRegs", &r.maxActiveRegs) ||
        !takeDouble("meanResidentContexts",
                    &r.meanResidentContexts) ||
        !takeDouble("meanUtilization", &r.meanUtilization) ||
        !takeDouble("maxUtilization", &r.maxUtilization)) {
        return fail(why, "missing or malformed double field");
    }
    if (!fields.empty()) {
        return fail(why,
                    "unknown field '" + fields.begin()->first + "'");
    }
    *out = r;
    return true;
}

} // namespace nsrf::serve
