#include "nsrf/serve/scheduler.hh"

#include <algorithm>
#include <exception>
#include <utility>
#include <vector>

#include "nsrf/common/logging.hh"
#include "nsrf/serve/codec.hh"

namespace nsrf::serve
{

bool
CellJob::wait(std::chrono::milliseconds timeout) const
{
    std::unique_lock<std::mutex> lock(mutex_);
    return cv_.wait_for(lock, timeout, [this] { return done_; });
}

bool
CellJob::done() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return done_;
}

BatchScheduler::BatchScheduler(ResultCache *cache, Config config)
    : cache_(cache), config_(config), paused_(config.startPaused)
{
    if (config_.maxBatch == 0)
        config_.maxBatch = 1;
    dispatcher_ = std::thread([this] { dispatcherLoop(); });
}

BatchScheduler::~BatchScheduler()
{
    drain();
}

Ticket
BatchScheduler::submit(sim::SweepCell cell)
{
    Fingerprint key = fingerprintCell(cell.config, cell.provenance);

    // Cache first — a hit completes immediately and never touches
    // the queue.  Lookup happens outside the scheduler lock (it may
    // read disk); the small window where a concurrent simulation of
    // the same cell finishes in between is harmless because results
    // are deterministic.
    if (cache_) {
        if (auto payload = cache_->get(key)) {
            sim::RunResult decoded;
            std::string why;
            if (decodeRunResult(*payload, &decoded, &why)) {
                auto job = std::make_shared<CellJob>();
                job->key_ = key;
                job->label_ = cell.label;
                job->result_ = decoded;
                job->encoded_ = *payload;
                job->done_ = true;
                std::lock_guard<std::mutex> lock(mutex_);
                ++hits_;
                return Ticket{Admission::Hit, std::move(job)};
            }
            nsrf_warn("serve: cached payload for %s undecodable "
                      "(%s); re-simulating",
                      key.hex().c_str(), why.c_str());
        }
    }

    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_)
        return Ticket{Admission::Closed, nullptr};

    auto inflight = inflight_.find(key);
    if (inflight != inflight_.end()) {
        ++merges_;
        return Ticket{Admission::Merged, inflight->second};
    }
    if (queue_.size() >= config_.maxQueue) {
        ++rejections_;
        return Ticket{Admission::Rejected, nullptr};
    }

    auto job = std::make_shared<CellJob>();
    job->key_ = key;
    job->label_ = cell.label;
    job->cell_ = std::move(cell);
    queue_.push_back(job);
    inflight_[key] = job;
    ++scheduled_;
    queueDepthPeak_ = std::max<std::uint64_t>(queueDepthPeak_,
                                              queue_.size());
    workCv_.notify_one();
    return Ticket{Admission::Scheduled, std::move(job)};
}

void
BatchScheduler::pause()
{
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = true;
}

void
BatchScheduler::resume()
{
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
    workCv_.notify_all();
}

void
BatchScheduler::drain()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        closed_ = true;
        paused_ = false; // a paused scheduler must still drain
        workCv_.notify_all();
        drainCv_.wait(lock, [this] {
            return queue_.empty() && !dispatcherBusy_;
        });
    }
    if (dispatcher_.joinable())
        dispatcher_.join();
}

void
BatchScheduler::completeJob(const std::shared_ptr<CellJob> &job,
                            const sim::RunResult *result,
                            const std::string &encoded,
                            const std::string &error)
{
    {
        std::lock_guard<std::mutex> lock(job->mutex_);
        if (result) {
            job->result_ = *result;
            job->encoded_ = encoded;
        } else {
            job->failed_ = true;
            job->error_ = error;
        }
        job->done_ = true;
        job->cell_ = sim::SweepCell{}; // release the generator
    }
    job->cv_.notify_all();
}

void
BatchScheduler::dispatcherLoop()
{
    while (true) {
        std::vector<std::shared_ptr<CellJob>> batch;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workCv_.wait(lock, [this] {
                return !paused_ && (!queue_.empty() || closed_);
            });
            if (queue_.empty()) {
                // closed_ and nothing left: finished.
                drainCv_.notify_all();
                return;
            }
            std::size_t n =
                std::min(config_.maxBatch, queue_.size());
            batch.assign(queue_.begin(),
                         queue_.begin() +
                             static_cast<std::ptrdiff_t>(n));
            queue_.erase(queue_.begin(),
                         queue_.begin() +
                             static_cast<std::ptrdiff_t>(n));
            dispatcherBusy_ = true;
        }

        std::vector<sim::SweepCell> cells;
        cells.reserve(batch.size());
        for (const auto &job : batch)
            cells.push_back(job->cell_);

        std::vector<sim::RunResult> results;
        std::string error;
        bool ok = true;
        try {
            results = config_.runner
                          ? config_.runner(cells)
                          : sim::SweepRunner(config_.jobs).run(cells);
        } catch (const std::exception &e) {
            ok = false;
            error = e.what();
        } catch (...) {
            ok = false;
            error = "unknown simulation failure";
        }

        // Publish to the cache, retire the in-flight keys, and
        // settle the counters BEFORE waking any waiter: a client
        // that resubmits the same cell the instant wait() returns
        // must observe a cache hit (never a merge against a retired
        // job), and a stats read after wait() must already count
        // this batch.
        std::vector<std::string> encoded(batch.size());
        if (ok) {
            for (std::size_t i = 0; i < batch.size(); ++i)
                encoded[i] = encodeRunResult(results[i]);
            if (cache_) {
                for (std::size_t i = 0; i < batch.size(); ++i)
                    cache_->put(batch[i]->key_, encoded[i]);
            }
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++batches_;
            if (ok)
                simulations_ += batch.size();
            else
                failures_ += batch.size();
            for (const auto &job : batch)
                inflight_.erase(job->key_);
        }

        for (std::size_t i = 0; i < batch.size(); ++i) {
            completeJob(batch[i], ok ? &results[i] : nullptr,
                        encoded[i], error);
        }

        {
            std::lock_guard<std::mutex> lock(mutex_);
            dispatcherBusy_ = false;
            drainCv_.notify_all();
        }
    }
}

SchedulerStats
BatchScheduler::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    SchedulerStats s;
    s.hits = hits_;
    s.scheduled = scheduled_;
    s.merges = merges_;
    s.rejections = rejections_;
    s.simulations = simulations_;
    s.batches = batches_;
    s.failures = failures_;
    s.queueDepth = queue_.size();
    s.queueDepthPeak = queueDepthPeak_;
    return s;
}

CachedRunStats
runCellsCached(ResultCache *cache, unsigned jobs,
               const std::vector<sim::SweepCell> &cells,
               std::vector<sim::RunResult> *results,
               const BatchRunner &runner)
{
    auto simulate = [&](const std::vector<sim::SweepCell> &work) {
        return runner ? runner(work)
                      : sim::SweepRunner(jobs).run(work);
    };
    CachedRunStats stats;
    results->assign(cells.size(), sim::RunResult{});
    if (cells.empty())
        return stats;
    if (!cache) {
        *results = simulate(cells);
        stats.misses = cells.size();
        return stats;
    }

    std::vector<sim::SweepCell> cold;
    std::vector<std::size_t> coldIndex;
    std::vector<Fingerprint> coldKeys;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        Fingerprint key =
            fingerprintCell(cells[i].config, cells[i].provenance);
        bool served = false;
        if (auto payload = cache->get(key)) {
            sim::RunResult decoded;
            std::string why;
            if (decodeRunResult(*payload, &decoded, &why)) {
                (*results)[i] = decoded;
                served = true;
            } else {
                nsrf_warn("cache: undecodable payload for cell "
                          "'%s' (%s); re-simulating",
                          cells[i].label.c_str(), why.c_str());
            }
        }
        if (served) {
            ++stats.hits;
        } else {
            ++stats.misses;
            cold.push_back(cells[i]);
            coldIndex.push_back(i);
            coldKeys.push_back(key);
        }
    }

    if (!cold.empty()) {
        auto coldResults = simulate(cold);
        for (std::size_t c = 0; c < cold.size(); ++c) {
            (*results)[coldIndex[c]] = coldResults[c];
            cache->put(coldKeys[c],
                       encodeRunResult(coldResults[c]));
        }
    }
    return stats;
}

} // namespace nsrf::serve
