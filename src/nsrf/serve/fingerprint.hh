/**
 * @file
 * Content-addressed identity for sweep cells (the serving layer's
 * cache key).
 *
 * A sweep cell is fully determined by its SimConfig (every register
 * file, cycle-model, and data-traffic parameter), the provenance of
 * its trace generator (workload name, seed, event budget), and the
 * result-schema version of the code that ran it.  canonicalCellText
 * lays all of that out as an unambiguous length-prefixed key=value
 * text; fingerprintCell hashes it to a 128-bit identity that is
 * stable across process restarts and machines, so results cached on
 * disk survive daemon restarts and can be shared between the
 * offline (`nsrf_sim --cache`) and serving (`nsrf_serve`) paths.
 *
 * kSchemaVersion must be bumped whenever the meaning of a config
 * field, the synthetic workload generators, or the RunResult codec
 * changes — old cache entries then miss instead of serving stale
 * results (the SweepRunner determinism contract makes anything that
 * *does* hit provably identical to a re-simulation).
 */

#ifndef NSRF_SERVE_FINGERPRINT_HH
#define NSRF_SERVE_FINGERPRINT_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "nsrf/sim/simulator.hh"

namespace nsrf::serve
{

/**
 * Version of the (canonical text, generator semantics, result
 * codec) triple.  Part of every fingerprint and of every cache
 * entry header.
 */
inline constexpr unsigned kSchemaVersion = 1;

/** A 128-bit content hash. */
struct Fingerprint
{
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;

    bool operator==(const Fingerprint &) const = default;

    /** @return 32 lowercase hex digits (hi then lo). */
    std::string hex() const;

    /** Parse hex(); @return false on malformed input. */
    static bool fromHex(const std::string &text, Fingerprint *out);
};

/** Hash functor for unordered containers keyed by Fingerprint. */
struct FingerprintHash
{
    std::size_t
    operator()(const Fingerprint &f) const
    {
        return static_cast<std::size_t>(f.hi ^ (f.lo * 0x9e3779b9u));
    }
};

/** Hash @p size bytes at @p data into a 128-bit fingerprint. */
Fingerprint hashBytes(const void *data, std::size_t size);

/** hashBytes over a string. */
Fingerprint hashString(const std::string &text);

/** Key/value pairs describing a cell's trace generator. */
using Provenance =
    std::vector<std::pair<std::string, std::string>>;

/**
 * The canonical text a cell fingerprint hashes: schema version,
 * every SimConfig field (doubles bit-cast so the text is exact),
 * and the provenance pairs sorted by key.  Exposed for tests and
 * for debugging cache mismatches.
 */
std::string canonicalCellText(const sim::SimConfig &config,
                              const Provenance &provenance);

/** @return the content-addressed identity of one sweep cell. */
Fingerprint fingerprintCell(const sim::SimConfig &config,
                            const Provenance &provenance);

} // namespace nsrf::serve

#endif // NSRF_SERVE_FINGERPRINT_HH
