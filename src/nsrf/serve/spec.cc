#include "nsrf/serve/spec.hh"

#include <algorithm>

#include "nsrf/workload/parallel.hh"
#include "nsrf/workload/profile.hh"
#include "nsrf/workload/sequential.hh"

namespace nsrf::serve
{

namespace
{

std::unique_ptr<sim::TraceGenerator>
generatorFor(const workload::BenchmarkProfile &profile,
             std::uint64_t events)
{
    std::uint64_t len =
        std::min(profile.executedInstructions, events);
    if (profile.parallel) {
        return std::make_unique<workload::ParallelWorkload>(profile,
                                                            len);
    }
    return std::make_unique<workload::SequentialWorkload>(profile,
                                                          len);
}

} // namespace

bool
parseOrganization(const std::string &name,
                  regfile::Organization *out)
{
    if (name == "nsf")
        *out = regfile::Organization::NamedState;
    else if (name == "segmented")
        *out = regfile::Organization::Segmented;
    else if (name == "conventional")
        *out = regfile::Organization::Conventional;
    else if (name == "windowed")
        *out = regfile::Organization::Windowed;
    else
        return false;
    return true;
}

bool
parseMissPolicy(const std::string &name, regfile::MissPolicy *out)
{
    if (name == "line")
        *out = regfile::MissPolicy::ReloadLine;
    else if (name == "live")
        *out = regfile::MissPolicy::ReloadLive;
    else if (name == "single")
        *out = regfile::MissPolicy::ReloadSingle;
    else
        return false;
    return true;
}

bool
parseWritePolicy(const std::string &name, regfile::WritePolicy *out)
{
    if (name == "fow")
        *out = regfile::WritePolicy::FetchOnWrite;
    else if (name == "wa")
        *out = regfile::WritePolicy::WriteAllocate;
    else
        return false;
    return true;
}

bool
parseMechanism(const std::string &name,
               regfile::SpillMechanism *out)
{
    if (name == "sw")
        *out = regfile::SpillMechanism::SoftwareTrap;
    else if (name == "hw")
        *out = regfile::SpillMechanism::HardwareAssist;
    else
        return false;
    return true;
}

const char *
missPolicyName(regfile::MissPolicy policy)
{
    switch (policy) {
      case regfile::MissPolicy::ReloadLine: return "line";
      case regfile::MissPolicy::ReloadLive: return "live";
      case regfile::MissPolicy::ReloadSingle: return "single";
    }
    return "?";
}

const char *
writePolicyName(regfile::WritePolicy policy)
{
    return policy == regfile::WritePolicy::FetchOnWrite ? "fow"
                                                        : "wa";
}

const char *
mechanismName(regfile::SpillMechanism mechanism)
{
    return mechanism == regfile::SpillMechanism::SoftwareTrap ? "sw"
                                                              : "hw";
}

bool
cellsFromParams(const CellParams &params,
                std::vector<sim::SweepCell> *out, std::string *why)
{
    std::vector<workload::BenchmarkProfile> profiles;
    if (params.app == "all") {
        profiles = workload::paperBenchmarks();
    } else {
        bool found = false;
        for (const auto &p : workload::paperBenchmarks()) {
            if (p.name == params.app) {
                profiles.push_back(p);
                found = true;
                break;
            }
        }
        if (!found) {
            if (why)
                *why = "unknown workload '" + params.app + "'";
            return false;
        }
    }

    out->clear();
    out->reserve(profiles.size());
    for (auto &profile : profiles) {
        if (params.seed)
            profile.seed = params.seed;

        sim::SimConfig config;
        config.rf.org = params.org;
        config.rf.totalRegs =
            params.totalRegs ? params.totalRegs
                             : (profile.parallel ? 128u : 80u);
        config.rf.regsPerContext = profile.regsPerContext;
        config.rf.regsPerLine = params.regsPerLine;
        config.rf.missPolicy = params.miss;
        config.rf.writePolicy = params.write;
        config.rf.replacement = params.repl;
        config.rf.mechanism = params.mech;
        config.rf.trackValid = params.trackValid;
        config.rf.backgroundTransfer = params.background;

        sim::SweepCell cell;
        cell.label = profile.name;
        cell.config = config;
        cell.config.maxInstructions = params.cap;
        cell.makeGenerator = [profile,
                              events = params.events]() {
            return generatorFor(profile, events);
        };
        // Cells drawing the same stream name it, so a sweep batch
        // decodes each shared event stream once (lane batching) —
        // same key scheme as the bench harness.
        cell.streamKey = profile.name + "#" +
                         std::to_string(profile.seed) + "#" +
                         std::to_string(params.events);
        // The provenance (with the config) IS the cache identity:
        // name the workload, its effective seed, the event budget,
        // and the generator scheme so any change to one of them
        // misses instead of aliasing.
        cell.provenance = {
            {"app", profile.name},
            {"events", std::to_string(params.events)},
            {"profileSeed", std::to_string(profile.seed)},
            {"generator", "synthetic-v2"},
        };
        out->push_back(std::move(cell));
    }
    return true;
}

bool
paramsFromJson(const json::Value &value, CellParams *out,
               std::string *why)
{
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };
    if (!value.isObject())
        return fail("cell spec must be an object");

    CellParams params;
    for (const auto &[key, member] : value.object) {
        if (key == "app") {
            if (!member.isString())
                return fail("app must be a string");
            params.app = member.string;
        } else if (key == "org") {
            if (!member.isString() ||
                !parseOrganization(member.string, &params.org)) {
                return fail("bad org");
            }
        } else if (key == "regs") {
            std::uint64_t v;
            if (!value.getU64(key, &v) || v > 1u << 20)
                return fail("bad regs");
            params.totalRegs = static_cast<unsigned>(v);
        } else if (key == "line") {
            std::uint64_t v;
            if (!value.getU64(key, &v) || v == 0 || v > 1u << 10)
                return fail("bad line");
            params.regsPerLine = static_cast<unsigned>(v);
        } else if (key == "miss") {
            if (!member.isString() ||
                !parseMissPolicy(member.string, &params.miss)) {
                return fail("bad miss policy");
            }
        } else if (key == "write") {
            if (!member.isString() ||
                !parseWritePolicy(member.string, &params.write)) {
                return fail("bad write policy");
            }
        } else if (key == "repl") {
            if (!member.isString() ||
                !cam::tryParseReplacement(member.string,
                                          &params.repl)) {
                return fail("bad replacement");
            }
        } else if (key == "mech") {
            if (!member.isString() ||
                !parseMechanism(member.string, &params.mech)) {
                return fail("bad mechanism");
            }
        } else if (key == "valid") {
            if (!member.isBool())
                return fail("valid must be a bool");
            params.trackValid = member.boolean;
        } else if (key == "bg") {
            if (!member.isBool())
                return fail("bg must be a bool");
            params.background = member.boolean;
        } else if (key == "events") {
            if (!value.getU64(key, &params.events) ||
                params.events == 0) {
                return fail("bad events");
            }
        } else if (key == "seed") {
            if (!value.getU64(key, &params.seed))
                return fail("bad seed");
        } else if (key == "cap") {
            if (!value.getU64(key, &params.cap))
                return fail("bad cap");
        } else {
            return fail("unknown cell field '" + key + "'");
        }
    }
    *out = params;
    return true;
}

} // namespace nsrf::serve
