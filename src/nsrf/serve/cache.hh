/**
 * @file
 * Content-addressed result cache: a sharded in-memory LRU over the
 * encoded RunResult payloads, backed by an optional on-disk store.
 *
 * Disk layout is one file per fingerprint, `<dir>/<hex32>.res`,
 * written atomically (temp file + rename) so a crashed or
 * concurrent writer can never leave a half-written entry under the
 * final name.  Every entry carries a header naming the schema
 * version, the key, the payload length, and a payload hash; a file
 * that fails any of those checks — truncated, garbage, version
 * skew, wrong key — is treated as a miss and evicted (unlinked),
 * never served.  Leftover `*.tmp.*` files from crashed writers are
 * swept at startup.
 *
 * The in-memory tier is bounded by entry count and by payload
 * bytes; the optional disk budget evicts oldest-modified entries
 * first.  All methods are thread-safe; shards keep the hot get()
 * path from serializing on one lock.
 */

#ifndef NSRF_SERVE_CACHE_HH
#define NSRF_SERVE_CACHE_HH

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "nsrf/serve/fingerprint.hh"

namespace nsrf::serve
{

/** Sizing and placement of one ResultCache. */
struct ResultCacheConfig
{
    /** On-disk store directory; empty = memory-only. */
    std::string dir;
    /** In-memory entry bound (whole cache, not per shard). */
    std::size_t maxEntries = 4096;
    /** In-memory payload-byte bound. */
    std::size_t maxBytes = 64u << 20;
    /** Disk payload-byte bound; 0 = unbounded. */
    std::uint64_t maxDiskBytes = 0;
    /** Lock shards (clamped to >= 1). */
    unsigned shards = 8;
};

/** Point-in-time counter snapshot (Prometheus export feeds on it). */
struct ResultCacheStats
{
    std::uint64_t hits = 0;        //!< get() served (memory or disk)
    std::uint64_t misses = 0;      //!< get() found nothing usable
    std::uint64_t memoryHits = 0;  //!< ...of hits, from the LRU
    std::uint64_t diskHits = 0;    //!< ...of hits, loaded from disk
    std::uint64_t insertions = 0;  //!< put() calls
    std::uint64_t evictions = 0;   //!< LRU/byte-budget removals
    std::uint64_t corruptDropped = 0; //!< bad disk entries unlinked
    std::uint64_t diskWriteFailures = 0;
    std::uint64_t entries = 0;     //!< resident LRU entries
    std::uint64_t bytes = 0;       //!< resident LRU payload bytes
};

/** Thread-safe content-addressed store of encoded results. */
class ResultCache
{
  public:
    explicit ResultCache(ResultCacheConfig config);

    /**
     * @return the payload for @p key, consulting memory then disk
     * (a disk hit is promoted into the LRU); nullopt on miss.
     */
    std::optional<std::string> get(const Fingerprint &key);

    /** Insert @p payload under @p key (memory + disk). */
    void put(const Fingerprint &key, const std::string &payload);

    /** @return a counter snapshot. */
    ResultCacheStats stats() const;

    /** @return whether a disk store is configured. */
    bool persistent() const { return !config_.dir.empty(); }

    /** @return the on-disk path for @p key ("" when memory-only). */
    std::string entryPath(const Fingerprint &key) const;

    /**
     * Serialize @p payload with the entry header used on disk.
     * Exposed (with readEntryFile) so tests can fabricate
     * corrupted/mismatched entries.
     */
    static std::string encodeEntry(const Fingerprint &key,
                                   const std::string &payload);

    /**
     * Read and validate one entry file.  @return the payload, or
     * nullopt when the file is missing, truncated, corrupt, carries
     * another schema version, or names a different key.
     */
    static std::optional<std::string> readEntryFile(
        const std::string &path, const Fingerprint &key);

  private:
    struct Entry
    {
        Fingerprint key;
        std::string payload;
    };

    /** One LRU shard: list front = most recently used. */
    struct Shard
    {
        mutable std::mutex mutex;
        std::list<Entry> lru;
        std::unordered_map<Fingerprint, std::list<Entry>::iterator,
                           FingerprintHash>
            index;
        std::size_t bytes = 0;
    };

    Shard &shardFor(const Fingerprint &key);

    /** Insert into @p shard, evicting to the per-shard budgets.
     * Caller holds the shard lock. */
    void insertLocked(Shard &shard, const Fingerprint &key,
                      const std::string &payload);

    /** Write the entry file atomically (temp + rename). */
    void writeEntry(const Fingerprint &key,
                    const std::string &payload);

    /** Delete a bad entry file and count it. */
    void dropCorrupt(const std::string &path);

    /** Enforce the disk byte budget (oldest mtime first). */
    void enforceDiskBudget();

    ResultCacheConfig config_;
    std::size_t shardMaxEntries_;
    std::size_t shardMaxBytes_;
    std::vector<Shard> shards_;

    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> misses_{0};
    mutable std::atomic<std::uint64_t> memoryHits_{0};
    mutable std::atomic<std::uint64_t> diskHits_{0};
    std::atomic<std::uint64_t> insertions_{0};
    std::atomic<std::uint64_t> evictions_{0};
    mutable std::atomic<std::uint64_t> corruptDropped_{0};
    std::atomic<std::uint64_t> diskWriteFailures_{0};
    std::atomic<std::uint64_t> tmpSeq_{0};
    std::mutex diskMutex_; //!< serializes budget enforcement
};

} // namespace nsrf::serve

#endif // NSRF_SERVE_CACHE_HH
