#include "nsrf/serve/fingerprint.hh"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "nsrf/cam/replacement.hh"
#include "nsrf/regfile/regfile.hh"

namespace nsrf::serve
{

namespace
{

/** splitmix64 finalizer: full-avalanche mix of one 64-bit lane. */
std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

void
appendU64(std::string &out, const char *key, std::uint64_t v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s=%llu\n", key,
                  static_cast<unsigned long long>(v));
    out += buf;
}

void
appendStr(std::string &out, const char *key, const std::string &v)
{
    // Length-prefixed so no value can masquerade as another field.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%s=%zu:", key, v.size());
    out += buf;
    out += v;
    out += '\n';
}

void
appendBool(std::string &out, const char *key, bool v)
{
    out += key;
    out += v ? "=1\n" : "=0\n";
}

void
appendDouble(std::string &out, const char *key, double v)
{
    // Bit-cast: the canonical text must be exact, not shortest-form.
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s=%016llx\n", key,
                  static_cast<unsigned long long>(
                      std::bit_cast<std::uint64_t>(v)));
    out += buf;
}

} // namespace

std::string
Fingerprint::hex() const
{
    char buf[33];
    std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                  static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(lo));
    return buf;
}

bool
Fingerprint::fromHex(const std::string &text, Fingerprint *out)
{
    if (text.size() != 32)
        return false;
    std::uint64_t words[2] = {0, 0};
    for (int w = 0; w < 2; ++w) {
        for (int i = 0; i < 16; ++i) {
            char c = text[static_cast<std::size_t>(w * 16 + i)];
            std::uint64_t digit;
            if (c >= '0' && c <= '9')
                digit = static_cast<std::uint64_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                digit = static_cast<std::uint64_t>(c - 'a' + 10);
            else
                return false;
            words[w] = (words[w] << 4) | digit;
        }
    }
    out->hi = words[0];
    out->lo = words[1];
    return true;
}

Fingerprint
hashBytes(const void *data, std::size_t size)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    // Two independent lanes: FNV-1a and a golden-ratio polynomial
    // hash, each finalized with a full-avalanche mix of the length.
    std::uint64_t a = 0xcbf29ce484222325ull;
    std::uint64_t b = 0x9e3779b97f4a7c15ull;
    for (std::size_t i = 0; i < size; ++i) {
        a = (a ^ bytes[i]) * 0x100000001b3ull;
        b = b * 0x9e3779b97f4a7c15ull + bytes[i] + 1;
    }
    Fingerprint f;
    f.hi = mix64(a ^ mix64(size));
    f.lo = mix64(b + mix64(size ^ 0x5bd1e995ull));
    return f;
}

Fingerprint
hashString(const std::string &text)
{
    return hashBytes(text.data(), text.size());
}

std::string
canonicalCellText(const sim::SimConfig &config,
                  const Provenance &provenance)
{
    const regfile::RegFileConfig &rf = config.rf;
    std::string out;
    out.reserve(1024);
    appendU64(out, "schema", kSchemaVersion);

    appendStr(out, "rf.org", regfile::organizationName(rf.org));
    appendU64(out, "rf.totalRegs", rf.totalRegs);
    appendU64(out, "rf.regsPerContext", rf.regsPerContext);
    appendU64(out, "rf.regsPerLine", rf.regsPerLine);
    appendU64(out, "rf.missPolicy",
              static_cast<std::uint64_t>(rf.missPolicy));
    appendU64(out, "rf.writePolicy",
              static_cast<std::uint64_t>(rf.writePolicy));
    appendStr(out, "rf.replacement",
              cam::replacementName(rf.replacement));
    appendBool(out, "rf.trackValid", rf.trackValid);
    appendU64(out, "rf.mechanism",
              static_cast<std::uint64_t>(rf.mechanism));
    appendBool(out, "rf.backgroundTransfer", rf.backgroundTransfer);
    appendBool(out, "rf.spillDirtyOnly", rf.spillDirtyOnly);
    appendU64(out, "rf.windowSpillBatch", rf.windowSpillBatch);
    appendU64(out, "rf.seed", rf.seed);

    const regfile::CostParams &costs = rf.costs;
    appendU64(out, "cost.missDetect", costs.missDetect);
    appendU64(out, "cost.nsfMissExtra", costs.nsfMissExtra);
    appendU64(out, "cost.hwSwitchOverhead", costs.hwSwitchOverhead);
    appendU64(out, "cost.hwPerRegExtra", costs.hwPerRegExtra);
    appendU64(out, "cost.swTrapOverhead", costs.swTrapOverhead);
    appendU64(out, "cost.swPerRegExtra", costs.swPerRegExtra);

    appendBool(out, "cache.present", config.cache.has_value());
    if (config.cache) {
        appendU64(out, "cache.sizeBytes", config.cache->sizeBytes);
        appendU64(out, "cache.lineBytes", config.cache->lineBytes);
        appendU64(out, "cache.ways", config.cache->ways);
        appendU64(out, "cache.hitLatency", config.cache->hitLatency);
        appendU64(out, "cache.missPenalty",
                  config.cache->missPenalty);
    }

    appendU64(out, "sim.memLatency", config.memLatency);
    appendU64(out, "sim.memRefExtra", config.memRefExtra);
    appendBool(out, "sim.modelDataTraffic", config.modelDataTraffic);
    appendU64(out, "sim.dataRegionBytes", config.dataRegionBytes);
    appendU64(out, "sim.hotRegionBytes", config.hotRegionBytes);
    appendDouble(out, "sim.hotFraction", config.hotFraction);
    appendU64(out, "sim.dataSeed", config.dataSeed);
    appendU64(out, "sim.cidCapacity", config.cidCapacity);
    appendU64(out, "sim.maxInstructions", config.maxInstructions);

    Provenance sorted = provenance;
    std::stable_sort(sorted.begin(), sorted.end());
    for (const auto &[key, value] : sorted) {
        appendStr(out, "p", key);
        appendStr(out, "v", value);
    }
    return out;
}

Fingerprint
fingerprintCell(const sim::SimConfig &config,
                const Provenance &provenance)
{
    return hashString(canonicalCellText(config, provenance));
}

} // namespace nsrf::serve
