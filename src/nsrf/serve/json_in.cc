#include "nsrf/serve/json_in.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace nsrf::serve::json
{

namespace
{

constexpr int kMaxDepth = 64;

struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string error;

    bool
    fail(const std::string &msg)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), " at byte %zu", pos);
        error = msg + buf;
        return false;
    }

    void
    skipSpace()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r')) {
            ++pos;
        }
    }

    bool
    literal(const char *word)
    {
        std::size_t n = std::string(word).size();
        if (text.compare(pos, n, word) != 0)
            return false;
        pos += n;
        return true;
    }

    bool
    parseString(std::string *out)
    {
        if (pos >= text.size() || text[pos] != '"')
            return fail("expected string");
        ++pos;
        out->clear();
        while (true) {
            if (pos >= text.size())
                return fail("unterminated string");
            unsigned char c =
                static_cast<unsigned char>(text[pos++]);
            if (c == '"')
                return true;
            if (c < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                *out += static_cast<char>(c);
                continue;
            }
            if (pos >= text.size())
                return fail("unterminated escape");
            char e = text[pos++];
            switch (e) {
              case '"': *out += '"'; break;
              case '\\': *out += '\\'; break;
              case '/': *out += '/'; break;
              case 'b': *out += '\b'; break;
              case 'f': *out += '\f'; break;
              case 'n': *out += '\n'; break;
              case 'r': *out += '\r'; break;
              case 't': *out += '\t'; break;
              case 'u': {
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    if (pos >= text.size())
                        return fail("truncated \\u escape");
                    char h = text[pos++];
                    unsigned digit;
                    if (h >= '0' && h <= '9')
                        digit = static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        digit = static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        digit = static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                    code = (code << 4) | digit;
                }
                // UTF-8 encode; surrogates are passed through as
                // replacement characters — the protocol never
                // needs astral-plane text.
                if (code >= 0xd800 && code <= 0xdfff)
                    code = 0xfffd;
                if (code < 0x80) {
                    *out += static_cast<char>(code);
                } else if (code < 0x800) {
                    *out += static_cast<char>(0xc0 | (code >> 6));
                    *out +=
                        static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    *out += static_cast<char>(0xe0 | (code >> 12));
                    *out += static_cast<char>(
                        0x80 | ((code >> 6) & 0x3f));
                    *out +=
                        static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
    }

    bool
    parseNumber(Value *out)
    {
        std::size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(
                    text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '+' ||
                text[pos] == '-')) {
            ++pos;
        }
        if (pos == start)
            return fail("expected number");
        std::string token = text.substr(start, pos - start);
        std::size_t digit0 = token[0] == '-' ? 1 : 0;
        if (digit0 + 1 < token.size() && token[digit0] == '0' &&
            std::isdigit(static_cast<unsigned char>(
                token[digit0 + 1]))) {
            pos = start;
            return fail("leading zero in number");
        }
        char *end = nullptr;
        double v = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size() ||
            !std::isfinite(v)) {
            pos = start;
            return fail("malformed number");
        }
        out->kind = Value::Kind::Number;
        out->number = v;
        // Pure integer literals additionally carry their exact
        // digits: doubles round silently above 2^53, and the wire
        // protocol has genuine 64-bit fields (instruction caps,
        // event counts).
        if (token.find_first_of(".eE") == std::string::npos) {
            out->integral = true;
            out->integralNegative = token[0] == '-';
            std::uint64_t mag = 0;
            for (std::size_t i = digit0; i < token.size(); ++i) {
                unsigned digit =
                    static_cast<unsigned>(token[i] - '0');
                if (mag > (UINT64_MAX - digit) / 10) {
                    out->integralOverflow = true;
                    break;
                }
                mag = mag * 10 + digit;
            }
            out->magnitude = out->integralOverflow ? 0 : mag;
        }
        return true;
    }

    bool
    parseValue(Value *out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipSpace();
        if (pos >= text.size())
            return fail("unexpected end of input");
        char c = text[pos];
        if (c == '{') {
            ++pos;
            out->kind = Value::Kind::Object;
            skipSpace();
            if (pos < text.size() && text[pos] == '}') {
                ++pos;
                return true;
            }
            while (true) {
                skipSpace();
                std::string key;
                if (!parseString(&key))
                    return false;
                for (const auto &member : out->object) {
                    if (member.first == key)
                        return fail("duplicate key '" + key + "'");
                }
                skipSpace();
                if (pos >= text.size() || text[pos] != ':')
                    return fail("expected ':'");
                ++pos;
                Value member;
                if (!parseValue(&member, depth + 1))
                    return false;
                out->object.emplace_back(std::move(key),
                                         std::move(member));
                skipSpace();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (pos < text.size() && text[pos] == '}') {
                    ++pos;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos;
            out->kind = Value::Kind::Array;
            skipSpace();
            if (pos < text.size() && text[pos] == ']') {
                ++pos;
                return true;
            }
            while (true) {
                Value element;
                if (!parseValue(&element, depth + 1))
                    return false;
                out->array.push_back(std::move(element));
                skipSpace();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (pos < text.size() && text[pos] == ']') {
                    ++pos;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            out->kind = Value::Kind::String;
            return parseString(&out->string);
        }
        if (literal("true")) {
            out->kind = Value::Kind::Bool;
            out->boolean = true;
            return true;
        }
        if (literal("false")) {
            out->kind = Value::Kind::Bool;
            out->boolean = false;
            return true;
        }
        if (literal("null")) {
            out->kind = Value::Kind::Null;
            return true;
        }
        return parseNumber(out);
    }
};

} // namespace

const Value *
Value::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[name, value] : object) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

bool
Value::getBool(const std::string &key, bool dflt) const
{
    const Value *v = find(key);
    return v && v->isBool() ? v->boolean : dflt;
}

double
Value::getNumber(const std::string &key, double dflt) const
{
    const Value *v = find(key);
    return v && v->isNumber() ? v->number : dflt;
}

std::string
Value::getString(const std::string &key,
                 const std::string &dflt) const
{
    const Value *v = find(key);
    return v && v->isString() ? v->string : dflt;
}

bool
Value::getU64(const std::string &key, std::uint64_t *out) const
{
    const Value *v = find(key);
    if (!v || !v->isNumber())
        return false;
    if (v->integral) {
        // Exact path: digit-for-digit in [0, UINT64_MAX], reject
        // everything else instead of rounding or wrapping.
        if (v->integralOverflow)
            return false;
        if (v->integralNegative && v->magnitude != 0)
            return false;
        *out = v->magnitude;
        return true;
    }
    // Fraction/exponent spellings only exist as doubles; accept
    // them strictly below 2^53, where every integer is uniquely
    // representable.  At 2^53 exactly the spelling is already
    // ambiguous (2^53 and 2^53+1 round to the same double).
    constexpr double kExact = 9007199254740992.0; // 2^53
    if (v->number < 0 || v->number != std::floor(v->number) ||
        v->number >= kExact) {
        return false;
    }
    *out = static_cast<std::uint64_t>(v->number);
    return true;
}

bool
parse(const std::string &text, Value *out, std::string *why)
{
    Parser parser{text, 0, {}};
    *out = Value{};
    if (!parser.parseValue(out, 0)) {
        if (why)
            *why = parser.error;
        return false;
    }
    parser.skipSpace();
    if (parser.pos != text.size()) {
        if (why) {
            char buf[64];
            std::snprintf(buf, sizeof(buf),
                          "trailing bytes at %zu", parser.pos);
            *why = buf;
        }
        return false;
    }
    return true;
}

} // namespace nsrf::serve::json
