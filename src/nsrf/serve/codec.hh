/**
 * @file
 * Exact, versioned serialization of sim::RunResult for the result
 * cache.
 *
 * Cached results must round-trip bit-identically: the acceptance
 * bar for the serving layer is that a warm `nsrf_sim --json` run
 * emits byte-identical output to the cold run it replays.  Doubles
 * are therefore stored bit-cast (not shortest-form decimal), and
 * decode is strict — any unknown, missing, or malformed field fails
 * the decode so the cache treats the entry as a miss instead of
 * serving a half-parsed result.
 */

#ifndef NSRF_SERVE_CODEC_HH
#define NSRF_SERVE_CODEC_HH

#include <string>

#include "nsrf/sim/simulator.hh"

namespace nsrf::serve
{

/** Serialize @p result as the cache payload text. */
std::string encodeRunResult(const sim::RunResult &result);

/**
 * Parse an encodeRunResult payload.  @return false (with @p why set
 * when non-null) on any structural problem; @p out is unspecified
 * then.
 */
bool decodeRunResult(const std::string &text, sim::RunResult *out,
                     std::string *why = nullptr);

} // namespace nsrf::serve

#endif // NSRF_SERVE_CODEC_HH
