#include "nsrf/serve/cache.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "nsrf/common/logging.hh"

namespace nsrf::serve
{

namespace
{

constexpr const char *kEntryMagic = "NSRFRESULT";

/** mkdir -p for the store directory (one level is enough in
 * practice, but parents cost nothing to handle). */
bool
makeDirs(const std::string &dir)
{
    std::string partial;
    for (std::size_t i = 0; i <= dir.size(); ++i) {
        if (i < dir.size() && dir[i] != '/') {
            partial += dir[i];
            continue;
        }
        if (i < dir.size())
            partial += '/';
        if (partial.empty() || partial == "/")
            continue;
        if (mkdir(partial.c_str(), 0777) != 0 && errno != EEXIST)
            return false;
    }
    return true;
}

bool
readWholeFile(const std::string &path, std::string *out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    out->clear();
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out->append(buf, got);
    bool ok = !std::ferror(f);
    std::fclose(f);
    return ok;
}

} // namespace

ResultCache::ResultCache(ResultCacheConfig config)
    : config_(std::move(config)),
      shards_(std::max(1u, config_.shards))
{
    std::size_t n = shards_.size();
    shardMaxEntries_ = std::max<std::size_t>(
        1, config_.maxEntries == 0 ? 1 : config_.maxEntries / n);
    shardMaxBytes_ = std::max<std::size_t>(
        1, config_.maxBytes == 0 ? 1 : config_.maxBytes / n);

    if (config_.dir.empty())
        return;
    if (!makeDirs(config_.dir)) {
        nsrf_fatal("result cache: cannot create directory '%s': %s",
                   config_.dir.c_str(), std::strerror(errno));
    }
    // Sweep temp files a crashed writer may have left behind; they
    // were never visible under a final name, so removal is safe.
    if (DIR *d = opendir(config_.dir.c_str())) {
        while (struct dirent *ent = readdir(d)) {
            std::string name = ent->d_name;
            if (name.find(".tmp.") != std::string::npos)
                ::unlink((config_.dir + "/" + name).c_str());
        }
        closedir(d);
    }
}

ResultCache::Shard &
ResultCache::shardFor(const Fingerprint &key)
{
    return shards_[static_cast<std::size_t>(key.lo) %
                   shards_.size()];
}

std::string
ResultCache::entryPath(const Fingerprint &key) const
{
    if (config_.dir.empty())
        return "";
    return config_.dir + "/" + key.hex() + ".res";
}

std::string
ResultCache::encodeEntry(const Fingerprint &key,
                         const std::string &payload)
{
    Fingerprint sum = hashString(payload);
    char header[128];
    std::snprintf(header, sizeof(header), "%s %u %s %zu %s\n",
                  kEntryMagic, kSchemaVersion, key.hex().c_str(),
                  payload.size(), sum.hex().c_str());
    return std::string(header) + payload;
}

std::optional<std::string>
ResultCache::readEntryFile(const std::string &path,
                           const Fingerprint &key)
{
    std::string raw;
    if (!readWholeFile(path, &raw))
        return std::nullopt;

    std::size_t nl = raw.find('\n');
    if (nl == std::string::npos)
        return std::nullopt;
    std::string header = raw.substr(0, nl);

    char magic[32], key_hex[64], sum_hex[64];
    unsigned version = 0;
    unsigned long long size = 0;
    if (std::sscanf(header.c_str(), "%31s %u %63s %llu %63s", magic,
                    &version, key_hex, &size, sum_hex) != 5) {
        return std::nullopt;
    }
    if (std::strcmp(magic, kEntryMagic) != 0 ||
        version != kSchemaVersion) {
        return std::nullopt;
    }
    Fingerprint stored_key, stored_sum;
    if (!Fingerprint::fromHex(key_hex, &stored_key) ||
        !Fingerprint::fromHex(sum_hex, &stored_sum) ||
        !(stored_key == key)) {
        return std::nullopt;
    }
    std::string payload = raw.substr(nl + 1);
    if (payload.size() != size ||
        !(hashString(payload) == stored_sum)) {
        return std::nullopt;
    }
    return payload;
}

std::optional<std::string>
ResultCache::get(const Fingerprint &key)
{
    Shard &shard = shardFor(key);
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.index.find(key);
        if (it != shard.index.end()) {
            shard.lru.splice(shard.lru.begin(), shard.lru,
                             it->second);
            hits_.fetch_add(1, std::memory_order_relaxed);
            memoryHits_.fetch_add(1, std::memory_order_relaxed);
            return it->second->payload;
        }
    }

    if (!config_.dir.empty()) {
        std::string path = entryPath(key);
        auto payload = readEntryFile(path, key);
        if (payload) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            insertLocked(shard, key, *payload);
            hits_.fetch_add(1, std::memory_order_relaxed);
            diskHits_.fetch_add(1, std::memory_order_relaxed);
            return payload;
        }
        // A present-but-unusable file is corrupt (or from another
        // schema): evict so it cannot shadow a future write.
        if (::access(path.c_str(), F_OK) == 0)
            dropCorrupt(path);
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
}

void
ResultCache::insertLocked(Shard &shard, const Fingerprint &key,
                          const std::string &payload)
{
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
        shard.bytes -= it->second->payload.size();
        shard.bytes += payload.size();
        it->second->payload = payload;
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
        shard.lru.push_front(Entry{key, payload});
        shard.index[key] = shard.lru.begin();
        shard.bytes += payload.size();
    }
    while (shard.lru.size() > 1 &&
           (shard.lru.size() > shardMaxEntries_ ||
            shard.bytes > shardMaxBytes_)) {
        Entry &victim = shard.lru.back();
        shard.bytes -= victim.payload.size();
        shard.index.erase(victim.key);
        shard.lru.pop_back();
        evictions_.fetch_add(1, std::memory_order_relaxed);
    }
}

void
ResultCache::put(const Fingerprint &key, const std::string &payload)
{
    insertions_.fetch_add(1, std::memory_order_relaxed);
    {
        Shard &shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mutex);
        insertLocked(shard, key, payload);
    }
    if (!config_.dir.empty()) {
        writeEntry(key, payload);
        if (config_.maxDiskBytes)
            enforceDiskBudget();
    }
}

void
ResultCache::writeEntry(const Fingerprint &key,
                        const std::string &payload)
{
    std::string final_path = entryPath(key);
    char suffix[64];
    std::snprintf(
        suffix, sizeof(suffix), ".tmp.%ld.%llu",
        static_cast<long>(::getpid()),
        static_cast<unsigned long long>(
            tmpSeq_.fetch_add(1, std::memory_order_relaxed)));
    std::string tmp_path = final_path + suffix;

    std::string blob = encodeEntry(key, payload);
    std::FILE *f = std::fopen(tmp_path.c_str(), "wb");
    if (!f) {
        diskWriteFailures_.fetch_add(1, std::memory_order_relaxed);
        nsrf_warn("result cache: cannot create '%s': %s",
                  tmp_path.c_str(), std::strerror(errno));
        return;
    }
    bool ok =
        std::fwrite(blob.data(), 1, blob.size(), f) == blob.size();
    ok = (std::fclose(f) == 0) && ok;
    if (!ok || std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
        diskWriteFailures_.fetch_add(1, std::memory_order_relaxed);
        nsrf_warn("result cache: cannot write '%s': %s",
                  final_path.c_str(), std::strerror(errno));
        ::unlink(tmp_path.c_str());
    }
}

void
ResultCache::dropCorrupt(const std::string &path)
{
    corruptDropped_.fetch_add(1, std::memory_order_relaxed);
    nsrf_warn("result cache: dropping unusable entry '%s'",
              path.c_str());
    ::unlink(path.c_str());
}

void
ResultCache::enforceDiskBudget()
{
    std::lock_guard<std::mutex> lock(diskMutex_);
    struct FileInfo
    {
        std::string path;
        std::uint64_t bytes;
        time_t mtime;
    };
    std::vector<FileInfo> files;
    std::uint64_t total = 0;
    DIR *d = opendir(config_.dir.c_str());
    if (!d)
        return;
    while (struct dirent *ent = readdir(d)) {
        std::string name = ent->d_name;
        if (name.size() < 4 ||
            name.compare(name.size() - 4, 4, ".res") != 0) {
            continue;
        }
        std::string path = config_.dir + "/" + name;
        struct stat st;
        if (stat(path.c_str(), &st) != 0)
            continue;
        files.push_back({path,
                         static_cast<std::uint64_t>(st.st_size),
                         st.st_mtime});
        total += static_cast<std::uint64_t>(st.st_size);
    }
    closedir(d);
    if (total <= config_.maxDiskBytes)
        return;
    std::sort(files.begin(), files.end(),
              [](const FileInfo &a, const FileInfo &b) {
                  return a.mtime < b.mtime;
              });
    for (const FileInfo &file : files) {
        if (total <= config_.maxDiskBytes)
            break;
        if (::unlink(file.path.c_str()) == 0) {
            total -= file.bytes;
            evictions_.fetch_add(1, std::memory_order_relaxed);
        }
    }
}

ResultCacheStats
ResultCache::stats() const
{
    ResultCacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.memoryHits = memoryHits_.load(std::memory_order_relaxed);
    s.diskHits = diskHits_.load(std::memory_order_relaxed);
    s.insertions = insertions_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.corruptDropped =
        corruptDropped_.load(std::memory_order_relaxed);
    s.diskWriteFailures =
        diskWriteFailures_.load(std::memory_order_relaxed);
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        s.entries += shard.lru.size();
        s.bytes += shard.bytes;
    }
    return s;
}

} // namespace nsrf::serve
