#include "nsrf/serve/server.hh"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "nsrf/common/logging.hh"
#include "nsrf/serve/codec.hh"
#include "nsrf/serve/spec.hh"
#include "nsrf/stats/json.hh"

namespace nsrf::serve
{

namespace
{

using Clock = std::chrono::steady_clock;

/**
 * Write all of @p data, resuming partial sends.  The socket carries
 * SO_SNDTIMEO, so a wedged reader surfaces as EAGAIN here instead
 * of blocking the connection thread forever; each tick re-checks
 * @p stop so shutdown is never held hostage by one slow client.
 */
bool
sendAll(int fd, const std::string &data,
        const std::atomic<bool> &stop)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        ssize_t n = ::send(fd, data.data() + sent,
                           data.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                // SO_SNDTIMEO elapsed: the send itself paces the
                // retry, so just re-check stop and resume.
                if (stop.load())
                    return false;
                continue;
            }
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

void
appendMetric(std::string &out, const char *name, const char *type,
             std::uint64_t value)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf), "# TYPE %s %s\n%s %llu\n", name,
                  type, name,
                  static_cast<unsigned long long>(value));
    out += buf;
}

} // namespace

Server::Server(ServerConfig config, ResultCache *cache,
               BatchScheduler *scheduler)
    : config_(std::move(config)), cache_(cache),
      scheduler_(scheduler)
{
}

Server::~Server()
{
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        ::unlink(config_.socketPath.c_str());
    }
}

bool
Server::start(std::string *why)
{
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (config_.socketPath.empty() ||
        config_.socketPath.size() >= sizeof(addr.sun_path)) {
        if (why)
            *why = "socket path empty or too long (max " +
                   std::to_string(sizeof(addr.sun_path) - 1) +
                   " bytes)";
        return false;
    }
    std::memcpy(addr.sun_path, config_.socketPath.c_str(),
                config_.socketPath.size() + 1);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        if (why)
            *why = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    // The daemon owns its socket path: a leftover node from a
    // crashed instance would otherwise wedge every restart.
    ::unlink(config_.socketPath.c_str());
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        if (why)
            *why = std::string("bind ") + config_.socketPath +
                   ": " + std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    if (::listen(listenFd_, 64) != 0) {
        if (why)
            *why = std::string("listen: ") + std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    return true;
}

int
Server::serve()
{
    nsrf_assert(listenFd_ >= 0, "serve() before start()");
    std::vector<std::thread> workers;
    std::mutex workersMutex;

    while (!stop_.load()) {
        pollfd pfd{listenFd_, POLLIN, 0};
        int ready = ::poll(&pfd, 1,
                           static_cast<int>(config_.pollIntervalMs));
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            nsrf_warn("serve: poll: %s", std::strerror(errno));
            break;
        }
        if (ready == 0)
            continue;
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            if (errno == EMFILE || errno == ENFILE ||
                errno == ENOBUFS || errno == ENOMEM) {
                // Resource pressure is transient: shed this accept
                // and keep the daemon alive.  Back off one poll
                // tick so a stuck EMFILE doesn't spin the log.
                nsrf_warn("serve: accept: %s (backing off)",
                          std::strerror(errno));
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(
                        config_.pollIntervalMs));
                continue;
            }
            nsrf_warn("serve: accept: %s", std::strerror(errno));
            break;
        }
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++connections_;
        }
        std::lock_guard<std::mutex> lock(workersMutex);
        workers.emplace_back(
            [this, fd]() { handleConnection(fd); });
    }

    // Drain: no new connections; let the open ones notice stop_
    // (their reads time out on pollIntervalMs) and finish.
    ::close(listenFd_);
    ::unlink(config_.socketPath.c_str());
    listenFd_ = -1;
    for (auto &worker : workers)
        worker.join();
    return 0;
}

void
Server::handleConnection(int fd)
{
    timeval tv;
    tv.tv_sec = config_.pollIntervalMs / 1000;
    tv.tv_usec =
        static_cast<long>(config_.pollIntervalMs % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    // Writes get the same tick so sendAll can re-check stop_
    // instead of blocking forever behind a wedged reader.
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

    std::string buffer;
    char chunk[4096];
    while (!stop_.load()) {
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK ||
                errno == EINTR) {
                continue; // poll tick: re-check stop_
            }
            break;
        }
        if (n == 0)
            break; // client closed
        buffer.append(chunk, static_cast<std::size_t>(n));
        std::size_t nl;
        while ((nl = buffer.find('\n')) != std::string::npos) {
            std::string line = buffer.substr(0, nl);
            buffer.erase(0, nl + 1);
            if (line.empty())
                continue;
            std::string reply = handleRequest(line);
            if (!sendAll(fd, reply + "\n", stop_)) {
                ::close(fd);
                return;
            }
        }
        // The line-length cap applies to the unconsumed partial line
        // only, after complete lines are drained: a pipelined burst
        // of many small requests is legal no matter its total size.
        if (buffer.size() > config_.maxLineBytes) {
            sendAll(fd,
                    errorReply("", "request line too long") + "\n",
                    stop_);
            break;
        }
    }
    ::close(fd);
}

std::string
Server::errorReply(const std::string &op,
                   const std::string &message)
{
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++badRequests_;
    }
    stats::JsonWriter json;
    json.beginObject();
    json.field("ok", false);
    if (!op.empty())
        json.field("op", op);
    json.field("error", message);
    json.endObject();
    return json.str();
}

std::string
Server::handleRequest(const std::string &line)
{
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++requests_;
    }
    json::Value request;
    std::string why;
    if (!json::parse(line, &request, &why))
        return errorReply("", "bad JSON: " + why);
    if (!request.isObject())
        return errorReply("", "request must be an object");
    std::string op = request.getString("op", "");
    if (op == "ping") {
        stats::JsonWriter json;
        json.beginObject();
        json.field("ok", true);
        json.field("op", "ping");
        json.field("schema", kSchemaVersion);
        json.endObject();
        return json.str();
    }
    if (op == "submit")
        return handleSubmit(request);
    if (op == "query")
        return handleQuery(request);
    if (op == "stats")
        return handleStats();
    if (op == "metrics") {
        stats::JsonWriter json;
        json.beginObject();
        json.field("ok", true);
        json.field("op", "metrics");
        json.field("text", metricsText());
        json.endObject();
        return json.str();
    }
    if (op == "shutdown") {
        requestStop();
        stats::JsonWriter json;
        json.beginObject();
        json.field("ok", true);
        json.field("op", "shutdown");
        json.endObject();
        return json.str();
    }
    return errorReply(op, "unknown op '" + op + "'");
}

std::string
Server::handleSubmit(const json::Value &request)
{
    const json::Value *specs = request.find("cells");
    if (!specs || !specs->isArray() || specs->array.empty())
        return errorReply("submit",
                          "submit needs a non-empty cells array");

    std::vector<sim::SweepCell> cells;
    for (const json::Value &spec : specs->array) {
        CellParams params;
        std::string why;
        if (!paramsFromJson(spec, &params, &why))
            return errorReply("submit", why);
        std::vector<sim::SweepCell> expanded;
        if (!cellsFromParams(params, &expanded, &why))
            return errorReply("submit", why);
        for (auto &cell : expanded)
            cells.push_back(std::move(cell));
        if (cells.size() > config_.maxCellsPerSubmit) {
            return errorReply(
                "submit",
                "submit expands to more than " +
                    std::to_string(config_.maxCellsPerSubmit) +
                    " cells");
        }
    }

    std::vector<Ticket> tickets;
    tickets.reserve(cells.size());
    std::vector<sim::SweepCell> cellCopies = cells;
    for (auto &cell : cells)
        tickets.push_back(scheduler_->submit(std::move(cell)));

    Clock::time_point deadline =
        Clock::now() +
        std::chrono::milliseconds(config_.requestTimeoutMs);

    stats::JsonWriter json;
    json.beginObject();
    json.field("ok", true);
    json.field("op", "submit");
    std::uint64_t cached = 0, merged = 0, rejected = 0,
                  timedOut = 0, failed = 0;
    json.key("cells").beginArray();
    for (std::size_t i = 0; i < tickets.size(); ++i) {
        const Ticket &ticket = tickets[i];
        json.beginObject();
        json.field("label", cellCopies[i].label);
        json.field("fingerprint",
                   fingerprintCell(cellCopies[i].config,
                                   cellCopies[i].provenance)
                       .hex());
        switch (ticket.admission) {
          case Admission::Hit:
            json.field("source", "cache");
            ++cached;
            break;
          case Admission::Merged:
            json.field("source", "merged");
            ++merged;
            break;
          case Admission::Scheduled:
            json.field("source", "simulated");
            break;
          case Admission::Rejected:
          case Admission::Closed:
            break;
        }
        if (!ticket.accepted()) {
            json.field("error",
                       ticket.admission == Admission::Rejected
                           ? "rejected: queue full"
                           : "rejected: shutting down");
            ++rejected;
            json.endObject();
            continue;
        }
        auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - Clock::now());
        if (remaining.count() < 0)
            remaining = std::chrono::milliseconds(0);
        if (!ticket.job->wait(remaining)) {
            json.field("error", "timeout");
            ++timedOut;
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++timeouts_;
        } else if (ticket.job->failed()) {
            json.field("error",
                       "simulation failed: " +
                           ticket.job->error());
            ++failed;
        } else {
            sim::appendResultJson(json, ticket.job->result());
        }
        json.endObject();
    }
    json.endArray();
    json.field("cached", cached);
    json.field("merged", merged);
    json.field("rejected", rejected);
    json.field("timeouts", timedOut);
    json.field("failures", failed);
    json.endObject();
    return json.str();
}

std::string
Server::handleQuery(const json::Value &request)
{
    std::string hex = request.getString("fingerprint", "");
    Fingerprint key;
    if (!Fingerprint::fromHex(hex, &key))
        return errorReply("query", "bad fingerprint");

    stats::JsonWriter json;
    json.beginObject();
    json.field("ok", true);
    json.field("op", "query");
    json.field("fingerprint", hex);
    std::optional<std::string> payload;
    if (cache_)
        payload = cache_->get(key);
    sim::RunResult result;
    if (payload && decodeRunResult(*payload, &result)) {
        json.field("found", true);
        sim::appendResultJson(json, result);
    } else {
        json.field("found", false);
    }
    json.endObject();
    return json.str();
}

std::string
Server::handleStats()
{
    SchedulerStats sched = scheduler_->stats();
    stats::JsonWriter json;
    json.beginObject();
    json.field("ok", true);
    json.field("op", "stats");
    json.field("schema", kSchemaVersion);
    json.key("scheduler").beginObject();
    json.field("hits", sched.hits);
    json.field("scheduled", sched.scheduled);
    json.field("merges", sched.merges);
    json.field("rejections", sched.rejections);
    json.field("simulations", sched.simulations);
    json.field("batches", sched.batches);
    json.field("failures", sched.failures);
    json.field("queueDepth", sched.queueDepth);
    json.field("queueDepthPeak", sched.queueDepthPeak);
    json.endObject();
    if (cache_) {
        ResultCacheStats cache = cache_->stats();
        json.key("cache").beginObject();
        json.field("hits", cache.hits);
        json.field("misses", cache.misses);
        json.field("memoryHits", cache.memoryHits);
        json.field("diskHits", cache.diskHits);
        json.field("insertions", cache.insertions);
        json.field("evictions", cache.evictions);
        json.field("corruptDropped", cache.corruptDropped);
        json.field("diskWriteFailures", cache.diskWriteFailures);
        json.field("entries", cache.entries);
        json.field("bytes", cache.bytes);
        json.endObject();
    }
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        json.key("server").beginObject();
        json.field("connections", connections_.value());
        json.field("requests", requests_.value());
        json.field("badRequests", badRequests_.value());
        json.field("timeouts", timeouts_.value());
        json.endObject();
    }
    if (statsHook_)
        statsHook_(json);
    json.endObject();
    return json.str();
}

std::string
Server::metricsText() const
{
    std::string out;
    SchedulerStats sched = scheduler_->stats();
    appendMetric(out, "nsrf_serve_cache_admission_hits_total",
                 "counter", sched.hits);
    appendMetric(out, "nsrf_serve_scheduled_total", "counter",
                 sched.scheduled);
    appendMetric(out, "nsrf_serve_single_flight_merges_total",
                 "counter", sched.merges);
    appendMetric(out, "nsrf_serve_rejections_total", "counter",
                 sched.rejections);
    appendMetric(out, "nsrf_serve_simulations_total", "counter",
                 sched.simulations);
    appendMetric(out, "nsrf_serve_batches_total", "counter",
                 sched.batches);
    appendMetric(out, "nsrf_serve_failures_total", "counter",
                 sched.failures);
    appendMetric(out, "nsrf_serve_queue_depth", "gauge",
                 sched.queueDepth);
    appendMetric(out, "nsrf_serve_queue_depth_peak", "gauge",
                 sched.queueDepthPeak);
    if (cache_) {
        ResultCacheStats cache = cache_->stats();
        appendMetric(out, "nsrf_serve_cache_hits_total", "counter",
                     cache.hits);
        appendMetric(out, "nsrf_serve_cache_misses_total",
                     "counter", cache.misses);
        appendMetric(out, "nsrf_serve_cache_disk_hits_total",
                     "counter", cache.diskHits);
        appendMetric(out, "nsrf_serve_cache_evictions_total",
                     "counter", cache.evictions);
        appendMetric(out,
                     "nsrf_serve_cache_corrupt_dropped_total",
                     "counter", cache.corruptDropped);
        appendMetric(out, "nsrf_serve_cache_entries", "gauge",
                     cache.entries);
        appendMetric(out, "nsrf_serve_cache_bytes", "gauge",
                     cache.bytes);
    }
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        appendMetric(out, "nsrf_serve_connections_total",
                     "counter", connections_.value());
        appendMetric(out, "nsrf_serve_requests_total", "counter",
                     requests_.value());
        appendMetric(out, "nsrf_serve_bad_requests_total",
                     "counter", badRequests_.value());
        appendMetric(out, "nsrf_serve_timeouts_total", "counter",
                     timeouts_.value());
    }
    if (metricsHook_)
        metricsHook_(out);
    return out;
}

} // namespace nsrf::serve
