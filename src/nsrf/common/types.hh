/**
 * @file
 * Fundamental scalar types shared by every NSRF subsystem.
 *
 * The simulator models a 32-bit SPARC-flavoured machine, so machine
 * words and virtual addresses are 32 bits wide.  Cycle counters are 64
 * bits so that long traces never overflow.
 */

#ifndef NSRF_COMMON_TYPES_HH
#define NSRF_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace nsrf
{

/** A 32-bit machine word: the contents of one register. */
using Word = std::uint32_t;

/** A 32-bit virtual (or physical) byte address. */
using Addr = std::uint32_t;

/** Simulation time measured in processor cycles. */
using Cycles = std::uint64_t;

/**
 * A Context ID names one procedure or thread activation (paper §4.2).
 *
 * CIDs are short integers drawn from a small hardware name space; the
 * Ctable translates a CID to the virtual address of the context's
 * backing frame.  They are neither virtual addresses nor global thread
 * identifiers.
 */
using ContextId = std::uint32_t;

/** A compiled register offset within a context (typically 0..31). */
using RegIndex = std::uint32_t;

/** Distinguished value meaning "no context". */
inline constexpr ContextId invalidContext =
    std::numeric_limits<ContextId>::max();

/** Distinguished value meaning "no register". */
inline constexpr RegIndex invalidReg =
    std::numeric_limits<RegIndex>::max();

/** Distinguished value meaning "no address". */
inline constexpr Addr invalidAddr = std::numeric_limits<Addr>::max();

/** Bytes per machine word. */
inline constexpr Addr wordBytes = 4;

} // namespace nsrf

#endif // NSRF_COMMON_TYPES_HH
