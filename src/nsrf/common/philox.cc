#include "nsrf/common/philox.hh"

#include "nsrf/common/logging.hh"

#if NSRF_SIMD && defined(__x86_64__)
#define NSRF_PHILOX_X86 1
#include <immintrin.h>
#else
#define NSRF_PHILOX_X86 0
#endif

namespace nsrf::simd
{

void
philoxFillScalar(std::uint32_t k0, std::uint32_t k1,
                 std::uint64_t stream, std::uint64_t blockBase,
                 std::size_t blocks, std::uint64_t *out)
{
    for (std::size_t i = 0; i < blocks; ++i)
        philoxBlock(k0, k1, stream, blockBase + i, out + 2 * i);
}

#if NSRF_PHILOX_X86

namespace
{

/**
 * SSE2 kernel: two blocks per iteration.  Each 64-bit lane carries
 * one 32-bit Philox word in its low half, so _mm_mul_epu32 gives the
 * full 32x32->64 product per lane and the hi/lo halves fall out with
 * a shift and a mask.
 */
void
philoxFillSse2(std::uint32_t k0, std::uint32_t k1,
               std::uint64_t stream, std::uint64_t blockBase,
               std::size_t blocks, std::uint64_t *out)
{
    const __m128i m0 = _mm_set1_epi64x(philoxM0);
    const __m128i m1 = _mm_set1_epi64x(philoxM1);
    const __m128i lowMask = _mm_set1_epi64x(0xffffffffll);
    const __m128i c2 =
        _mm_set1_epi64x(static_cast<std::uint32_t>(stream));
    const __m128i c3 =
        _mm_set1_epi64x(static_cast<std::uint32_t>(stream >> 32));

    std::size_t i = 0;
    for (; i + 2 <= blocks; i += 2, out += 4) {
        __m128i bi = _mm_add_epi64(
            _mm_set1_epi64x(
                static_cast<long long>(blockBase + i)),
            _mm_set_epi64x(1, 0));
        __m128i x0 = _mm_and_si128(bi, lowMask);
        __m128i x1 = _mm_srli_epi64(bi, 32);
        __m128i x2 = c2;
        __m128i x3 = c3;
        __m128i key0 = _mm_set1_epi64x(k0);
        __m128i key1 = _mm_set1_epi64x(k1);
        const __m128i w0 = _mm_set1_epi64x(philoxW0);
        const __m128i w1 = _mm_set1_epi64x(philoxW1);
        for (int round = 0; round < philoxRounds; ++round) {
            __m128i p0 = _mm_mul_epu32(x0, m0);
            __m128i p1 = _mm_mul_epu32(x2, m1);
            __m128i hi0 = _mm_srli_epi64(p0, 32);
            __m128i lo0 = _mm_and_si128(p0, lowMask);
            __m128i hi1 = _mm_srli_epi64(p1, 32);
            __m128i lo1 = _mm_and_si128(p1, lowMask);
            x0 = _mm_xor_si128(_mm_xor_si128(hi1, x1), key0);
            x1 = lo1;
            x2 = _mm_xor_si128(_mm_xor_si128(hi0, x3), key1);
            x3 = lo0;
            key0 = _mm_add_epi64(key0, w0);
            key1 = _mm_add_epi64(key1, w1);
        }
        // Per lane: draw0 = x0|x1<<32, draw1 = x2|x3<<32; interleave
        // lanes into draw order (block0 d0, block0 d1, block1 ...).
        // x0/x2 carry key-bump carries above bit 31 (the scalar key
        // wraps mod 2^32), so mask them down before packing.
        __m128i evn = _mm_or_si128(_mm_and_si128(x0, lowMask),
                                   _mm_slli_epi64(x1, 32));
        __m128i odd = _mm_or_si128(_mm_and_si128(x2, lowMask),
                                   _mm_slli_epi64(x3, 32));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out),
                         _mm_unpacklo_epi64(evn, odd));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + 2),
                         _mm_unpackhi_epi64(evn, odd));
    }
    if (i < blocks)
        philoxFillScalar(k0, k1, stream, blockBase + i, blocks - i,
                         out);
}

/** AVX2 kernel: four blocks per iteration, same lane layout. */
__attribute__((target("avx2"))) void
philoxFillAvx2(std::uint32_t k0, std::uint32_t k1,
               std::uint64_t stream, std::uint64_t blockBase,
               std::size_t blocks, std::uint64_t *out)
{
    const __m256i m0 = _mm256_set1_epi64x(philoxM0);
    const __m256i m1 = _mm256_set1_epi64x(philoxM1);
    const __m256i lowMask = _mm256_set1_epi64x(0xffffffffll);
    const __m256i c2 =
        _mm256_set1_epi64x(static_cast<std::uint32_t>(stream));
    const __m256i c3 =
        _mm256_set1_epi64x(static_cast<std::uint32_t>(stream >> 32));
    const __m256i laneIdx = _mm256_set_epi64x(3, 2, 1, 0);
    const __m256i w0 = _mm256_set1_epi64x(philoxW0);
    const __m256i w1 = _mm256_set1_epi64x(philoxW1);

    std::size_t i = 0;
    for (; i + 4 <= blocks; i += 4, out += 8) {
        __m256i bi = _mm256_add_epi64(
            _mm256_set1_epi64x(
                static_cast<long long>(blockBase + i)),
            laneIdx);
        __m256i x0 = _mm256_and_si256(bi, lowMask);
        __m256i x1 = _mm256_srli_epi64(bi, 32);
        __m256i x2 = c2;
        __m256i x3 = c3;
        __m256i key0 = _mm256_set1_epi64x(k0);
        __m256i key1 = _mm256_set1_epi64x(k1);
        for (int round = 0; round < philoxRounds; ++round) {
            __m256i p0 = _mm256_mul_epu32(x0, m0);
            __m256i p1 = _mm256_mul_epu32(x2, m1);
            __m256i hi0 = _mm256_srli_epi64(p0, 32);
            __m256i lo0 = _mm256_and_si256(p0, lowMask);
            __m256i hi1 = _mm256_srli_epi64(p1, 32);
            __m256i lo1 = _mm256_and_si256(p1, lowMask);
            x0 = _mm256_xor_si256(_mm256_xor_si256(hi1, x1), key0);
            x1 = lo1;
            x2 = _mm256_xor_si256(_mm256_xor_si256(hi0, x3), key1);
            x3 = lo0;
            key0 = _mm256_add_epi64(key0, w0);
            key1 = _mm256_add_epi64(key1, w1);
        }
        // Mask off key-bump carries above bit 31, as in the SSE2
        // kernel.
        __m256i evn =
            _mm256_or_si256(_mm256_and_si256(x0, lowMask),
                            _mm256_slli_epi64(x1, 32));
        __m256i odd =
            _mm256_or_si256(_mm256_and_si256(x2, lowMask),
                            _mm256_slli_epi64(x3, 32));
        // unpack pairs within 128-bit halves, then stitch halves
        // back into draw order.
        __m256i lo = _mm256_unpacklo_epi64(evn, odd);
        __m256i hi = _mm256_unpackhi_epi64(evn, odd);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(out),
            _mm256_permute2x128_si256(lo, hi, 0x20));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(out + 4),
            _mm256_permute2x128_si256(lo, hi, 0x31));
    }
    if (i < blocks)
        philoxFillScalar(k0, k1, stream, blockBase + i, blocks - i,
                         out);
}

} // namespace

#endif // NSRF_PHILOX_X86

void
philoxFillLevel(SimdLevel level, std::uint32_t k0, std::uint32_t k1,
                std::uint64_t stream, std::uint64_t blockBase,
                std::size_t blocks, std::uint64_t *out)
{
    nsrf_assert(simdLevelSupported(level),
                "philoxFillLevel: kernel not supported");
    switch (level) {
#if NSRF_PHILOX_X86
      case SimdLevel::Avx2:
        philoxFillAvx2(k0, k1, stream, blockBase, blocks, out);
        return;
      case SimdLevel::Sse2:
        philoxFillSse2(k0, k1, stream, blockBase, blocks, out);
        return;
#else
      case SimdLevel::Avx2:
      case SimdLevel::Sse2:
#endif
      case SimdLevel::Scalar:
        philoxFillScalar(k0, k1, stream, blockBase, blocks, out);
        return;
    }
    philoxFillScalar(k0, k1, stream, blockBase, blocks, out);
}

} // namespace nsrf::simd
