/**
 * @file
 * Small bit-manipulation helpers used by decoders and the ISA.
 */

#ifndef NSRF_COMMON_BITUTIL_HH
#define NSRF_COMMON_BITUTIL_HH

#include <bit>
#include <cstdint>

#include "nsrf/common/logging.hh"

namespace nsrf
{

/** @return true when @p v is a power of two (and nonzero). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** @return ceil(log2(v)); log2Ceil(1) == 0. */
constexpr unsigned
log2Ceil(std::uint64_t v)
{
    unsigned bits = 0;
    std::uint64_t x = 1;
    while (x < v) {
        x <<= 1;
        ++bits;
    }
    return bits;
}

/** @return floor(log2(v)); requires v != 0. */
constexpr unsigned
log2Floor(std::uint64_t v)
{
    unsigned bits = 0;
    while (v > 1) {
        v >>= 1;
        ++bits;
    }
    return bits;
}

/**
 * Extract the bit field [lo, hi] (inclusive, hi >= lo) from @p v.
 */
constexpr std::uint32_t
bits(std::uint32_t v, unsigned hi, unsigned lo)
{
    unsigned width = hi - lo + 1;
    std::uint32_t mask =
        width >= 32 ? ~0u : ((1u << width) - 1u);
    return (v >> lo) & mask;
}

/**
 * Insert @p field into bit positions [lo, hi] of @p v and return the
 * result.  Bits of @p field above the width are discarded.
 */
constexpr std::uint32_t
insertBits(std::uint32_t v, unsigned hi, unsigned lo, std::uint32_t field)
{
    unsigned width = hi - lo + 1;
    std::uint32_t mask =
        width >= 32 ? ~0u : ((1u << width) - 1u);
    return (v & ~(mask << lo)) | ((field & mask) << lo);
}

/** Sign-extend the low @p width bits of @p v to 32 bits. */
constexpr std::int32_t
signExtend(std::uint32_t v, unsigned width)
{
    unsigned shift = 32 - width;
    return static_cast<std::int32_t>(v << shift) >> shift;
}

/** Round @p v up to the next multiple of @p align (a power of two). */
constexpr std::uint64_t
roundUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Number of set bits. */
constexpr unsigned
popCount(std::uint64_t v)
{
    return static_cast<unsigned>(std::popcount(v));
}

} // namespace nsrf

#endif // NSRF_COMMON_BITUTIL_HH
