/**
 * @file
 * Counter-based deterministic random source for trace generation.
 *
 * CounterRandom presents the same drawing surface as Random (next,
 * uniform, real, chance, geometric, weightedPick) but is backed by
 * the Philox-4x32-10 counter cipher instead of a state-chained
 * generator: draw i of stream s under seed k is the pure function
 * philox(key(k), s, i).  That buys three things xoshiro cannot give:
 *
 *  - no loop-carried dependency: a whole buffer of upcoming draws is
 *    computed as one data-parallel batch (SSE2/AVX2 when available),
 *    so consuming a draw is a buffered load, not a serial update;
 *  - position indexing: skipTo()/at() reach any stream position in
 *    O(1) without replaying predecessors;
 *  - cheap independent streams: (seed, stream) pairs index 2^64
 *    statistically independent sequences, so every generator and
 *    every sweep cell can own a private stream of a common seed.
 *
 * The integer-threshold chance() contract is shared with Random
 * (same ChanceThreshold type, same draw-for-draw acceptance rule),
 * so probability thresholds compiled for one generator transfer to
 * the other — the equivalence tests in test_common.cc pin this.
 *
 * uniform(bound) uses Lemire's multiply-shift rejection instead of
 * Random's divide-based rejection: same distribution family (exact,
 * unbiased), one 64x64->128 multiply on the accept path, but a
 * *different* mapping from raw draws to values — one of the reasons
 * the migration to CounterRandom regenerated the golden references.
 */

#ifndef NSRF_COMMON_COUNTER_RANDOM_HH
#define NSRF_COMMON_COUNTER_RANDOM_HH

#include <array>
#include <cmath>
#include <cstdint>

#include "nsrf/common/logging.hh"
#include "nsrf/common/philox.hh"
#include "nsrf/common/random.hh"

namespace nsrf
{

/**
 * Well-known stream ids.  Consumers sharing one seed draw from
 * disjoint streams, so adding draws to one can never shift another —
 * the property that keeps golden references stable across layers.
 */
namespace rngstream
{
constexpr std::uint64_t workload = 0;   ///< trace generators
constexpr std::uint64_t dataValues = 1; ///< simulator data traffic
constexpr std::uint64_t fuzzOps = 2;    ///< differential fuzzer ops
constexpr std::uint64_t clientRetry = 3; ///< nsrf_request backoff jitter
} // namespace rngstream

/** Deterministic counter-based (Philox) random number generator. */
class CounterRandom
{
  public:
    /** Integer acceptance thresholds transfer from Random. */
    using ChanceThreshold = Random::ChanceThreshold;

    /** Draws buffered per batch refill (128 Philox blocks). */
    static constexpr std::size_t bufferDraws = 256;

    explicit CounterRandom(std::uint64_t seed = 0x9e3779b97f4a7c15ull,
                           std::uint64_t stream = 0)
    {
        this->seed(seed, stream);
    }

    /** Reseed; (seed, stream) fully determines the sequence. */
    void
    seed(std::uint64_t seedValue, std::uint64_t stream = 0)
    {
        // SplitMix64 finalizer: decorrelates the key from related
        // seeds (profiles use consecutive small integers).
        std::uint64_t z = seedValue + 0x9e3779b97f4a7c15ull;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        z ^= z >> 31;
        key0_ = static_cast<std::uint32_t>(z);
        key1_ = static_cast<std::uint32_t>(z >> 32);
        stream_ = stream;
        base_ = 0;
        pos_ = 0;
        filled_ = 0;
    }

    /** @return the next raw 64-bit draw (buffered batch fill). */
    std::uint64_t
    next()
    {
        if (pos_ == filled_)
            refill();
        return buffer_[pos_++];
    }

    /** @return the stream position of the next draw. */
    std::uint64_t
    position() const
    {
        return base_ + pos_;
    }

    /** Jump so the next draw is stream position @p index. */
    void
    skipTo(std::uint64_t index)
    {
        if (index >= base_ && index < base_ + filled_) {
            pos_ = static_cast<std::size_t>(index - base_);
            return;
        }
        base_ = index;
        pos_ = 0;
        filled_ = 0;
    }

    /** Position-indexed draw, without moving the stream. */
    std::uint64_t
    at(std::uint64_t index) const
    {
        std::uint64_t pair[2];
        philoxBlock(key0_, key1_, stream_, index >> 1, pair);
        return pair[index & 1];
    }

    /** @return uniform integer in [0, bound); bound must be > 0. */
    std::uint64_t
    uniform(std::uint64_t bound)
    {
        nsrf_assert(bound > 0, "uniform() needs a positive bound");
        // Lemire's multiply-shift: the high 64 bits of r*bound are
        // uniform once the biased low-bits slice is rejected.  The
        // reject test almost never triggers for the small bounds the
        // workload models use (probability < bound / 2^64).
        unsigned __int128 product =
            static_cast<unsigned __int128>(next()) * bound;
        std::uint64_t low = static_cast<std::uint64_t>(product);
        if (low < bound) [[unlikely]] {
            std::uint64_t threshold = (0 - bound) % bound;
            while (low < threshold) {
                product =
                    static_cast<unsigned __int128>(next()) * bound;
                low = static_cast<std::uint64_t>(product);
            }
        }
        return static_cast<std::uint64_t>(product >> 64);
    }

    /** @return uniform integer in [lo, hi] inclusive; hi >= lo. */
    std::int64_t
    uniformRange(std::int64_t lo, std::int64_t hi)
    {
        nsrf_assert(hi >= lo, "uniformRange() needs hi >= lo");
        std::uint64_t span = static_cast<std::uint64_t>(hi) -
                             static_cast<std::uint64_t>(lo) + 1;
        std::uint64_t draw = span == 0 ? next() : uniform(span);
        return static_cast<std::int64_t>(
            static_cast<std::uint64_t>(lo) + draw);
    }

    /** @return uniform real in [0, 1), on the same 2^-53 grid as
     * Random::real(). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** @return true with probability @p p (clamped to [0, 1]). */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return real() < p;
    }

    /** Precompute the threshold for chance(@p p). */
    static ChanceThreshold
    chanceThreshold(double p)
    {
        return Random::chanceThreshold(p);
    }

    /** chance() against a precompiled threshold; same draws, same
     * answers as chance(p). */
    bool
    chance(ChanceThreshold t)
    {
        if (t.value == 0)
            return false;
        if (t.value == ~0ull)
            return true;
        return (next() >> 11) < t.value;
    }

    /**
     * @return a sample from a geometric-flavoured distribution with
     * the given mean, always at least 1.
     */
    std::uint64_t
    geometric(double mean)
    {
        if (mean <= 1.0)
            return 1;
        double p = 1.0 / mean;
        double u = real();
        double value =
            std::floor(std::log1p(-u) / std::log1p(-p)) + 1.0;
        if (!(value >= 1.0))
            value = 1.0;
        if (value >= 0x1.0p64)
            return ~0ull;
        return static_cast<std::uint64_t>(value);
    }

    /**
     * Pick an index in [0, count) with probability proportional to
     * the weights.  Zero total weight picks index 0.
     */
    std::size_t
    weightedPick(const double *weights, std::size_t count)
    {
        nsrf_assert(count > 0,
                    "weightedPick() needs at least one weight");
        double total = 0.0;
        for (std::size_t i = 0; i < count; ++i)
            total += weights[i];
        if (total <= 0.0)
            return 0;
        double target = real() * total;
        double acc = 0.0;
        for (std::size_t i = 0; i < count; ++i) {
            acc += weights[i];
            if (target < acc)
                return i;
        }
        return count - 1;
    }

  private:
    void
    refill()
    {
        std::uint64_t nextDraw = base_ + pos_;
        // Refill from the enclosing block boundary so the batch is a
        // whole number of blocks; the draw we were asked for is at
        // offset 0 or 1.
        std::uint64_t start = nextDraw & ~std::uint64_t{1};
        simd::philoxFill(key0_, key1_, stream_, start >> 1,
                         bufferDraws / 2, buffer_.data());
        base_ = start;
        filled_ = bufferDraws;
        pos_ = static_cast<std::size_t>(nextDraw - start);
    }

    std::array<std::uint64_t, bufferDraws> buffer_;
    std::uint64_t base_ = 0;    ///< stream position of buffer_[0]
    std::size_t pos_ = 0;       ///< next unconsumed buffer slot
    std::size_t filled_ = 0;    ///< valid draws in buffer_
    std::uint32_t key0_ = 0, key1_ = 0;
    std::uint64_t stream_ = 0;
};

} // namespace nsrf

#endif // NSRF_COMMON_COUNTER_RANDOM_HH
