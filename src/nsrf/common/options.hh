/**
 * @file
 * Shared command-line scanning and checked numeric parsing for the
 * CLI tools.
 *
 * Every tool historically hand-rolled the same `--flag value` argv
 * walk with unchecked atoi/strtoul conversions, so a typo such as
 * `--jobs fast` silently became 0 ("all threads") and `--events 1e6`
 * became 1.  OptionScanner centralizes the walk and the parse
 * helpers fatal() on garbage instead of guessing; nsrf_sim,
 * nsrf_fuzz, nsrf_trace, nsrf_serve, and nsrf_request all parse
 * through this header.
 */

#ifndef NSRF_COMMON_OPTIONS_HH
#define NSRF_COMMON_OPTIONS_HH

#include <cstdint>
#include <string>

namespace nsrf::common
{

/**
 * Parse @p text as an unsigned decimal (or 0x-prefixed hex) integer.
 * fatal()s — naming @p flag — on empty input, trailing garbage,
 * negative numbers, and overflow.  No silent zero: the historical
 * atoi paths turned typos into "0", which several flags interpret as
 * "all cores" or "unlimited".
 */
std::uint64_t parseU64(const std::string &flag, const char *text);

/** parseU64 restricted to the unsigned-int range. */
unsigned parseU32(const std::string &flag, const char *text);

/**
 * One pass over argv.  Usage:
 *
 *   common::OptionScanner scan(argc, argv);
 *   while (scan.next()) {
 *       if (scan.is("--jobs"))        opt.jobs = scan.u32();
 *       else if (scan.is("--json"))   opt.json = true;
 *       else if (scan.is("--out"))    opt.out = scan.value();
 *       else scan.unknown();          // or custom handling
 *   }
 *
 * value()/u64()/u32() consume the following argv slot and fatal()
 * when it is missing, so `tool --jobs` can never read past argv.
 */
class OptionScanner
{
  public:
    OptionScanner(int argc, char **argv) : argc_(argc), argv_(argv) {}

    /** Advance to the next argument; @return false at the end. */
    bool
    next()
    {
        if (i_ + 1 >= argc_)
            return false;
        arg_ = argv_[++i_];
        return true;
    }

    /** @return the current argument. */
    const std::string &arg() const { return arg_; }

    /** @return whether the current argument equals @p name. */
    bool is(const char *name) const { return arg_ == name; }

    /** Consume and @return the current flag's value; fatal if absent. */
    const char *value();

    /** Consume the value and parse it as a checked integer. */
    std::uint64_t u64() { return parseU64(arg_, value()); }
    unsigned u32() { return parseU32(arg_, value()); }

    /** fatal() with an "unknown option" message for arg(). */
    [[noreturn]] void unknown() const;

  private:
    int argc_;
    char **argv_;
    int i_ = 0;
    std::string arg_;
};

} // namespace nsrf::common

#endif // NSRF_COMMON_OPTIONS_HH
