/**
 * @file
 * Self-audit hooks for the core hardware models.
 *
 * Each structure that backs a hardware invariant (the CAM decoder,
 * the replacement list, the Ctable, the NSF itself) exposes an
 * `auditInvariants(std::string *why)` method that walks its live
 * state and reports the first violated invariant.  The check/
 * subsystem and the fuzzer call those methods directly.
 *
 * In addition, a build configured with -DNSRF_AUDIT=ON compiles a
 * hook into every mutating operation that re-runs the owner's audit
 * and panics on the first violation, so any test, bench, or tool
 * exercises the invariants continuously.  When the option is off the
 * hook expands to nothing — zero code, zero cost.
 */

#ifndef NSRF_COMMON_AUDIT_HH
#define NSRF_COMMON_AUDIT_HH

#include <cstdlib>
#include <string>

#include "nsrf/common/logging.hh"

namespace nsrf::auditing
{

/**
 * Record the first violated invariant: format the explanation into
 * @p why (when non-null) and @return false, so audit methods read
 *   return auditing::fail(why, "....", ...);
 */
template <typename... Args>
inline bool
fail(std::string *why, const char *fmt, Args... args)
{
    if (why)
        *why = detail::format(fmt, args...);
    return false;
}

/**
 * Audit sampling stride from NSRF_AUDIT_STRIDE (default 1: audit
 * every mutation).  A full audit walks the whole structure, so
 * per-mutation auditing is quadratic over a run; integration-scale
 * jobs set a stride to keep hook coverage at bounded cost
 * (tools/ci.sh does this for the sanitized full suite).
 */
inline bool
due()
{
    static const unsigned stride = [] {
        if (const char *env = std::getenv("NSRF_AUDIT_STRIDE")) {
            char *end = nullptr;
            unsigned long v = std::strtoul(env, &end, 10);
            if (end && *end == '\0' && v >= 1)
                return static_cast<unsigned>(v);
        }
        return 1u;
    }();
    thread_local unsigned countdown = 0;
    if (++countdown >= stride) {
        countdown = 0;
        return true;
    }
    return false;
}

} // namespace nsrf::auditing

#ifndef NSRF_AUDIT
#define NSRF_AUDIT 0
#endif

#if NSRF_AUDIT

/**
 * Run @p check (a call to some auditInvariants(&why)) after a
 * mutating operation; panic with the structure's explanation when
 * the invariant no longer holds.  Honors the NSRF_AUDIT_STRIDE
 * sampling stride (violations are structural and persist, so a
 * sampled audit still catches them, just a few mutations later).
 */
#define nsrf_audit_hook(check)                                          \
    do {                                                                \
        if (nsrf::auditing::due()) {                                    \
            std::string nsrf_audit_why_;                                \
            if (!(check)) {                                             \
                nsrf_panic("audit failed after %s: %s", __func__,       \
                           nsrf_audit_why_.c_str());                    \
            }                                                           \
        }                                                               \
    } while (0)

#else

#define nsrf_audit_hook(check)                                          \
    do {                                                                \
    } while (0)

#endif // NSRF_AUDIT

#endif // NSRF_COMMON_AUDIT_HH
