/**
 * @file
 * Philox-4x32-10 counter-mode block cipher, the primitive under
 * CounterRandom.
 *
 * Philox (Salmon et al., "Parallel Random Numbers: As Easy as 1, 2,
 * 3", SC'11) turns a 128-bit counter and a 64-bit key into 128
 * random bits with ten multiply/xor rounds.  Unlike a state-chained
 * generator, draw N is a pure function of (key, stream, N): blocks
 * can be computed in any order, on any lane, which is what lets the
 * batch fills below run data-parallel and lets a consumer jump to an
 * arbitrary position without replaying the stream.
 *
 * Layout used here: counter word 0/1 = the 64-bit block index,
 * counter word 2/3 = the 64-bit stream id, key = 64 bits derived
 * from the user seed.  Each block yields two 64-bit draws, so draw i
 * lives in block i>>1, word i&1.
 *
 * The scalar block function is defined inline (it is the reference
 * the vector kernels are differentially tested against, and the KAT
 * tests call it directly).  The batch fills write draws for a run of
 * consecutive blocks; philoxFill() dispatches on activeSimdLevel().
 */

#ifndef NSRF_COMMON_PHILOX_HH
#define NSRF_COMMON_PHILOX_HH

#include <cstddef>
#include <cstdint>

#include "nsrf/common/simd.hh"

namespace nsrf
{

/** Round multipliers and key schedule constants (Random123). */
constexpr std::uint32_t philoxM0 = 0xD2511F53u;
constexpr std::uint32_t philoxM1 = 0xCD9E8D57u;
constexpr std::uint32_t philoxW0 = 0x9E3779B9u;
constexpr std::uint32_t philoxW1 = 0xBB67AE85u;
constexpr int philoxRounds = 10;

/**
 * One Philox-4x32-10 block: counter (c0..c3) + key (k0,k1) -> four
 * 32-bit words.  Matches the Random123 reference exactly.
 */
inline void
philox4x32(std::uint32_t k0, std::uint32_t k1, std::uint32_t c0,
           std::uint32_t c1, std::uint32_t c2, std::uint32_t c3,
           std::uint32_t out[4])
{
    std::uint32_t x0 = c0, x1 = c1, x2 = c2, x3 = c3;
    for (int round = 0; round < philoxRounds; ++round) {
        std::uint64_t p0 = static_cast<std::uint64_t>(philoxM0) * x0;
        std::uint64_t p1 = static_cast<std::uint64_t>(philoxM1) * x2;
        std::uint32_t lo0 = static_cast<std::uint32_t>(p0);
        std::uint32_t hi0 = static_cast<std::uint32_t>(p0 >> 32);
        std::uint32_t lo1 = static_cast<std::uint32_t>(p1);
        std::uint32_t hi1 = static_cast<std::uint32_t>(p1 >> 32);
        x0 = hi1 ^ x1 ^ k0;
        x1 = lo1;
        x2 = hi0 ^ x3 ^ k1;
        x3 = lo0;
        k0 += philoxW0;
        k1 += philoxW1;
    }
    out[0] = x0;
    out[1] = x1;
    out[2] = x2;
    out[3] = x3;
}

/** The two 64-bit draws of block @p block on stream @p stream. */
inline void
philoxBlock(std::uint32_t k0, std::uint32_t k1, std::uint64_t stream,
            std::uint64_t block, std::uint64_t out[2])
{
    std::uint32_t words[4];
    philox4x32(k0, k1, static_cast<std::uint32_t>(block),
               static_cast<std::uint32_t>(block >> 32),
               static_cast<std::uint32_t>(stream),
               static_cast<std::uint32_t>(stream >> 32), words);
    out[0] = words[0] |
             (static_cast<std::uint64_t>(words[1]) << 32);
    out[1] = words[2] |
             (static_cast<std::uint64_t>(words[3]) << 32);
}

namespace simd
{

/**
 * Write the 2*@p blocks draws of blocks [blockBase, blockBase +
 * blocks) to @p out, in draw order.  The portable reference.
 */
void philoxFillScalar(std::uint32_t k0, std::uint32_t k1,
                      std::uint64_t stream, std::uint64_t blockBase,
                      std::size_t blocks, std::uint64_t *out);

/**
 * Same contract, with the kernel for @p level; the level must be
 * supported (simdLevelSupported()).  Exposed for differential tests
 * and benchmarks; ordinary consumers call philoxFill().
 */
void philoxFillLevel(SimdLevel level, std::uint32_t k0,
                     std::uint32_t k1, std::uint64_t stream,
                     std::uint64_t blockBase, std::size_t blocks,
                     std::uint64_t *out);

/** Batch fill with the activeSimdLevel() kernel. */
inline void
philoxFill(std::uint32_t k0, std::uint32_t k1, std::uint64_t stream,
           std::uint64_t blockBase, std::size_t blocks,
           std::uint64_t *out)
{
    philoxFillLevel(activeSimdLevel(), k0, k1, stream, blockBase,
                    blocks, out);
}

} // namespace simd

} // namespace nsrf

#endif // NSRF_COMMON_PHILOX_HH
