/**
 * @file
 * Run-time SIMD capability selection for the batch kernels.
 *
 * Every data-parallel kernel in the tree (the Philox block fill, the
 * CAM tag probe) is written three times: a portable scalar loop that
 * is always compiled, and SSE2/AVX2 variants compiled only when
 * NSRF_SIMD is on and the target is x86-64.  Which variant runs is a
 * *run-time* choice so a single binary can execute on any host and —
 * more importantly — so the scalar and vector paths can be
 * differentially tested against each other in the same process.
 *
 * The active level is resolved once, from the strongest level this
 * build + CPU supports, clamped by the NSRF_SIMD environment
 * variable ("scalar", "sse2", "avx2") for forcing the fallback in CI
 * and benchmarks.
 */

#ifndef NSRF_COMMON_SIMD_HH
#define NSRF_COMMON_SIMD_HH

namespace nsrf
{

/** Kernel flavours, weakest to strongest. */
enum class SimdLevel
{
    Scalar = 0,
    Sse2 = 1,
    Avx2 = 2,
};

/** @return the lowercase name ("scalar", "sse2", "avx2"). */
const char *simdLevelName(SimdLevel level);

/** @return true if this build compiled kernels for @p level. */
bool simdLevelCompiled(SimdLevel level);

/** @return true if @p level is compiled in and the CPU supports it. */
bool simdLevelSupported(SimdLevel level);

/** @return the strongest supported level, ignoring the environment. */
SimdLevel bestSimdLevel();

/**
 * @return the level the dispatched kernels use: bestSimdLevel()
 * clamped by the NSRF_SIMD environment variable.  Resolved once per
 * process.
 */
SimdLevel activeSimdLevel();

} // namespace nsrf

#endif // NSRF_COMMON_SIMD_HH
