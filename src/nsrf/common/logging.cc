#include "nsrf/common/logging.hh"

#include <cstdarg>
#include <vector>

namespace nsrf
{

namespace
{

bool verboseFlag = true;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}

} // namespace

void
setVerbose(bool verbose)
{
    verboseFlag = verbose;
}

bool
verbose()
{
    return verboseFlag;
}

namespace detail
{

void
logLine(LogLevel level, const char *file, int line, const std::string &msg)
{
    if (level == LogLevel::Panic || level == LogLevel::Fatal) {
        std::fprintf(stderr, "%s: %s (%s:%d)\n", levelName(level),
                     msg.c_str(), file, line);
    } else {
        std::fprintf(stderr, "%s: %s\n", levelName(level), msg.c_str());
    }
}

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (needed < 0) {
        va_end(args);
        return "<format error>";
    }
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    va_end(args);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

} // namespace detail

} // namespace nsrf
