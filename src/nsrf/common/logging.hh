/**
 * @file
 * Error and status reporting in the gem5 tradition.
 *
 * panic()  - an internal invariant was violated: a simulator bug.
 *            Prints and aborts (may dump core).
 * fatal()  - the simulation cannot continue because of a user error
 *            (bad configuration, invalid arguments).  Prints and
 *            exits with status 1.
 * warn()   - something is suspicious but simulation continues.
 * inform() - normal operating status.
 */

#ifndef NSRF_COMMON_LOGGING_HH
#define NSRF_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace nsrf
{

/** Severity of a log message. */
enum class LogLevel { Info, Warn, Fatal, Panic };

namespace detail
{

/** Print one formatted log line to stderr. */
void logLine(LogLevel level, const char *file, int line,
             const std::string &msg);

/** Printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

/**
 * Toggle warn()/inform() output (panic/fatal always print).
 * Benches silence informational chatter with this.
 */
void setVerbose(bool verbose);

/** @return whether warn()/inform() output is enabled. */
bool verbose();

#define nsrf_panic(...)                                                 \
    do {                                                                \
        ::nsrf::detail::logLine(::nsrf::LogLevel::Panic, __FILE__,      \
                                __LINE__,                               \
                                ::nsrf::detail::format(__VA_ARGS__));   \
        std::abort();                                                   \
    } while (0)

#define nsrf_fatal(...)                                                 \
    do {                                                                \
        ::nsrf::detail::logLine(::nsrf::LogLevel::Fatal, __FILE__,      \
                                __LINE__,                               \
                                ::nsrf::detail::format(__VA_ARGS__));   \
        std::exit(1);                                                   \
    } while (0)

#define nsrf_warn(...)                                                  \
    do {                                                                \
        if (::nsrf::verbose()) {                                        \
            ::nsrf::detail::logLine(::nsrf::LogLevel::Warn, __FILE__,   \
                                    __LINE__,                           \
                                    ::nsrf::detail::format(             \
                                        __VA_ARGS__));                  \
        }                                                               \
    } while (0)

#define nsrf_inform(...)                                                \
    do {                                                                \
        if (::nsrf::verbose()) {                                        \
            ::nsrf::detail::logLine(::nsrf::LogLevel::Info, __FILE__,   \
                                    __LINE__,                           \
                                    ::nsrf::detail::format(             \
                                        __VA_ARGS__));                  \
        }                                                               \
    } while (0)

/** Internal-invariant check that survives NDEBUG builds. */
#define nsrf_assert(cond, ...)                                          \
    do {                                                                \
        if (!(cond)) {                                                  \
            nsrf_panic("assertion failed: %s: %s", #cond,               \
                       ::nsrf::detail::format(__VA_ARGS__).c_str());    \
        }                                                               \
    } while (0)

} // namespace nsrf

#endif // NSRF_COMMON_LOGGING_HH
