/**
 * @file
 * Deterministic pseudo-random source for workload generation.
 *
 * All simulated randomness flows through this class so that every
 * experiment is exactly reproducible from its seed.  The generator is
 * xoshiro256**, seeded with SplitMix64, which is both fast and of far
 * higher quality than the workload models require.
 */

#ifndef NSRF_COMMON_RANDOM_HH
#define NSRF_COMMON_RANDOM_HH

#include <array>
#include <cstdint>

#include "nsrf/common/logging.hh"

namespace nsrf
{

/** Deterministic, seedable random number generator. */
class Random
{
  public:
    /** Construct with an explicit seed; equal seeds, equal streams. */
    explicit Random(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Reseed, restarting the stream. */
    void seed(std::uint64_t seed);

    /** @return the next raw 64-bit value. */
    std::uint64_t next();

    /** @return uniform integer in [0, bound); bound must be > 0. */
    std::uint64_t uniform(std::uint64_t bound);

    /** @return uniform integer in [lo, hi] inclusive; hi >= lo. */
    std::int64_t uniformRange(std::int64_t lo, std::int64_t hi);

    /** @return uniform real in [0, 1). */
    double real();

    /** @return true with probability @p p (clamped to [0, 1]). */
    bool chance(double p);

    /**
     * @return a sample from a geometric-flavoured distribution with
     * the given mean, always at least 1.  Models run lengths such as
     * "instructions until the next call".
     */
    std::uint64_t geometric(double mean);

    /**
     * Pick an index in [0, weights.size()) with probability
     * proportional to the weights.  Zero total weight picks index 0.
     */
    std::size_t weightedPick(const double *weights, std::size_t count);

  private:
    std::array<std::uint64_t, 4> state_;
};

} // namespace nsrf

#endif // NSRF_COMMON_RANDOM_HH
