/**
 * @file
 * Deterministic pseudo-random source for workload generation.
 *
 * All simulated randomness flows through this class so that every
 * experiment is exactly reproducible from its seed.  The generator is
 * xoshiro256**, seeded with SplitMix64, which is both fast and of far
 * higher quality than the workload models require.
 *
 * The draw-per-instruction members (next, uniform, real, chance) are
 * defined here so workload generators inline them; the shaped
 * distributions stay out of line.
 */

#ifndef NSRF_COMMON_RANDOM_HH
#define NSRF_COMMON_RANDOM_HH

#include <array>
#include <cstdint>

#include "nsrf/common/bitutil.hh"
#include "nsrf/common/logging.hh"

namespace nsrf::snapshot
{
struct SnapshotAccess;
} // namespace nsrf::snapshot

namespace nsrf
{

/** Deterministic, seedable random number generator. */
class Random
{
    friend struct ::nsrf::snapshot::SnapshotAccess;

  public:
    /** Construct with an explicit seed; equal seeds, equal streams. */
    explicit Random(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Reseed, restarting the stream. */
    void seed(std::uint64_t seed);

    /** @return the next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** @return uniform integer in [0, bound); bound must be > 0. */
    std::uint64_t
    uniform(std::uint64_t bound)
    {
        nsrf_assert(bound > 0, "uniform() needs a positive bound");
        // Rejection sampling to avoid modulo bias.  The rejection
        // threshold (2^64 - bound) mod bound is strictly below
        // bound, so a draw at or above bound accepts without
        // computing it — for the small bounds the workload models
        // use, the threshold division (the second of two 64-bit
        // divides on this path) runs only on a ~bound/2^64 fluke.
        for (;;) {
            std::uint64_t r = next();
            if (r >= bound || r >= (0 - bound) % bound)
                return mod(r, bound);
        }
    }

    /** @return uniform integer in [lo, hi] inclusive; hi >= lo. */
    std::int64_t uniformRange(std::int64_t lo, std::int64_t hi);

    /** @return uniform real in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** @return true with probability @p p (clamped to [0, 1]). */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return real() < p;
    }

    /**
     * A chance() probability precompiled to an integer acceptance
     * threshold.  real() compares an exact 53-bit integer scaled by
     * an exact power of two against p, so the comparison transfers
     * to the integers: real() < p  ⟺  (next() >> 11) < ceil(p·2^53)
     * for p in (0, 1).  0 and ~0 encode the p <= 0 / p >= 1 guards,
     * which must answer without consuming a draw.
     */
    struct ChanceThreshold
    {
        std::uint64_t value = 0;
    };

    /** Precompute the threshold for chance(@p p). */
    static ChanceThreshold chanceThreshold(double p);

    /**
     * chance() with the probability compare done in integers; same
     * draws, same answers as chance(p) for the p the threshold was
     * built from.
     */
    bool
    chance(ChanceThreshold t)
    {
        if (t.value == 0)
            return false;
        if (t.value == ~0ull)
            return true;
        return (next() >> 11) < t.value;
    }

    /**
     * @return a sample from a geometric-flavoured distribution with
     * the given mean, always at least 1.  Models run lengths such as
     * "instructions until the next call".
     */
    std::uint64_t geometric(double mean);

    /**
     * Pick an index in [0, weights.size()) with probability
     * proportional to the weights.  Zero total weight picks index 0.
     */
    std::size_t weightedPick(const double *weights, std::size_t count);

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    /** Cached reciprocal for one modulo divisor (see mod()). */
    struct ModCache
    {
        std::uint64_t bound = 0;
        std::uint64_t magic = 0;
        unsigned shift = 0;
    };

    /**
     * @return r % bound, exactly, without a hardware divide on the
     * hot path.
     *
     * The workload models draw uniforms over a handful of small,
     * repeating bounds (working-set sizes, phase-set sizes), so the
     * 64-bit divide in `r % bound` dominates the draw cost.  This
     * uses the Granlund–Montgomery reciprocal: with L = floor(log2
     * bound) and magic M = floor(2^(64+L) / bound), the estimate
     * q = (r * M) >> (64 + L) satisfies q <= r / bound <= q + 1 for
     * every r (the truncation error r*e / (bound * 2^(64+L)) with
     * e = 2^(64+L) mod bound < bound < 2^(L+1) is below 2^-L <= 1),
     * so a single conditional fixup makes the remainder exact.
     * Powers of two take the mask path.  Reciprocals are cached in
     * a small direct-mapped table keyed by the bound's low bits; a
     * miss pays one 128/64 divide to refill.
     */
    std::uint64_t
    mod(std::uint64_t r, std::uint64_t bound)
    {
        if ((bound & (bound - 1)) == 0)
            return r & (bound - 1);
        ModCache &mc = modCache_[bound & (modCache_.size() - 1)];
        if (mc.bound != bound) {
            mc.bound = bound;
            mc.shift = static_cast<unsigned>(log2Floor(bound));
            mc.magic = static_cast<std::uint64_t>(
                (static_cast<unsigned __int128>(1)
                 << (64 + mc.shift)) /
                bound);
        }
        std::uint64_t q =
            static_cast<std::uint64_t>(
                (static_cast<unsigned __int128>(r) * mc.magic) >>
                64) >>
            mc.shift;
        std::uint64_t rem = r - q * bound;
        if (rem >= bound)
            rem -= bound;
        return rem;
    }

    std::array<std::uint64_t, 4> state_;
    std::array<ModCache, 8> modCache_{};
};

} // namespace nsrf

#endif // NSRF_COMMON_RANDOM_HH
