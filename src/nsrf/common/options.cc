#include "nsrf/common/options.hh"

#include <cerrno>
#include <climits>
#include <cstdlib>

#include "nsrf/common/logging.hh"

namespace nsrf::common
{

std::uint64_t
parseU64(const std::string &flag, const char *text)
{
    if (text == nullptr || *text == '\0')
        nsrf_fatal("%s: empty numeric value", flag.c_str());
    // strtoull accepts a leading minus by wrapping; reject it (and
    // stray whitespace) explicitly.
    if (text[0] == '-' || text[0] == '+' || text[0] == ' ')
        nsrf_fatal("%s: '%s' is not an unsigned integer",
                   flag.c_str(), text);
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(text, &end, 0);
    if (errno == ERANGE)
        nsrf_fatal("%s: '%s' is out of range", flag.c_str(), text);
    if (end == text || *end != '\0')
        nsrf_fatal("%s: '%s' is not an unsigned integer",
                   flag.c_str(), text);
    return v;
}

unsigned
parseU32(const std::string &flag, const char *text)
{
    std::uint64_t v = parseU64(flag, text);
    if (v > UINT_MAX)
        nsrf_fatal("%s: '%s' is out of range", flag.c_str(), text);
    return static_cast<unsigned>(v);
}

const char *
OptionScanner::value()
{
    if (i_ + 1 >= argc_)
        nsrf_fatal("missing value for %s", arg_.c_str());
    return argv_[++i_];
}

void
OptionScanner::unknown() const
{
    nsrf_fatal("unknown option '%s' (try --help)", arg_.c_str());
}

} // namespace nsrf::common
