#include "nsrf/common/random.hh"

#include <cmath>

namespace nsrf
{

namespace
{

std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Random::Random(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Random::seed(std::uint64_t seed_value)
{
    std::uint64_t sm = seed_value;
    for (auto &word : state_)
        word = splitMix64(sm);
}

std::uint64_t
Random::next()
{
    std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t
Random::uniform(std::uint64_t bound)
{
    nsrf_assert(bound > 0, "uniform() needs a positive bound");
    // Rejection sampling to avoid modulo bias.
    std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Random::uniformRange(std::int64_t lo, std::int64_t hi)
{
    nsrf_assert(hi >= lo, "uniformRange() needs hi >= lo");
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniform(span));
}

double
Random::real()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Random::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return real() < p;
}

std::uint64_t
Random::geometric(double mean)
{
    if (mean <= 1.0)
        return 1;
    // Geometric with success probability 1/mean, support {1, 2, ...}.
    double p = 1.0 / mean;
    double u = real();
    double value = std::floor(std::log1p(-u) / std::log1p(-p)) + 1.0;
    if (value < 1.0)
        value = 1.0;
    return static_cast<std::uint64_t>(value);
}

std::size_t
Random::weightedPick(const double *weights, std::size_t count)
{
    nsrf_assert(count > 0, "weightedPick() needs at least one weight");
    double total = 0.0;
    for (std::size_t i = 0; i < count; ++i)
        total += weights[i];
    if (total <= 0.0)
        return 0;
    double target = real() * total;
    double acc = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
        acc += weights[i];
        if (target < acc)
            return i;
    }
    return count - 1;
}

} // namespace nsrf
