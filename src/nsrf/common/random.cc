#include "nsrf/common/random.hh"

#include <cmath>

namespace nsrf
{

namespace
{

std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

Random::Random(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Random::seed(std::uint64_t seed_value)
{
    std::uint64_t sm = seed_value;
    for (auto &word : state_)
        word = splitMix64(sm);
}

Random::ChanceThreshold
Random::chanceThreshold(double p)
{
    if (p <= 0.0)
        return {0};
    if (p >= 1.0)
        return {~0ull};
    // p * 2^53 is an exact power-of-two scaling, so ceil() of it is
    // the exact acceptance bound (see ChanceThreshold).
    return {static_cast<std::uint64_t>(std::ceil(p * 0x1.0p53))};
}

std::int64_t
Random::uniformRange(std::int64_t lo, std::int64_t hi)
{
    nsrf_assert(hi >= lo, "uniformRange() needs hi >= lo");
    // Width in unsigned arithmetic: hi - lo as int64 overflows for
    // ranges wider than 2^63.
    std::uint64_t span = static_cast<std::uint64_t>(hi) -
                         static_cast<std::uint64_t>(lo) + 1;
    // The full [INT64_MIN, INT64_MAX] span wraps to 0; every 64-bit
    // value is in range, so a raw draw is the uniform answer.
    std::uint64_t draw = span == 0 ? next() : uniform(span);
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                     draw);
}

std::uint64_t
Random::geometric(double mean)
{
    if (mean <= 1.0)
        return 1;
    // Geometric with success probability 1/mean, support {1, 2, ...}.
    double p = 1.0 / mean;
    double u = real();
    double value = std::floor(std::log1p(-u) / std::log1p(-p)) + 1.0;
    if (!(value >= 1.0))
        value = 1.0;
    // For huge means an unlucky draw lands above 2^64 and the
    // conversion would be undefined; saturate instead.
    if (value >= 0x1.0p64)
        return ~0ull;
    return static_cast<std::uint64_t>(value);
}

std::size_t
Random::weightedPick(const double *weights, std::size_t count)
{
    nsrf_assert(count > 0, "weightedPick() needs at least one weight");
    double total = 0.0;
    for (std::size_t i = 0; i < count; ++i)
        total += weights[i];
    if (total <= 0.0)
        return 0;
    double target = real() * total;
    double acc = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
        acc += weights[i];
        if (target < acc)
            return i;
    }
    return count - 1;
}

} // namespace nsrf
