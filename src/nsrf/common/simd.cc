#include "nsrf/common/simd.hh"

#include <cstdlib>
#include <cstring>

#include "nsrf/common/logging.hh"

namespace nsrf
{

namespace
{

#if NSRF_SIMD && defined(__x86_64__)
#define NSRF_SIMD_X86 1
#else
#define NSRF_SIMD_X86 0
#endif

SimdLevel
resolveActiveLevel()
{
    SimdLevel level = bestSimdLevel();
    const char *request = std::getenv("NSRF_SIMD");
    if (request == nullptr || *request == '\0')
        return level;
    SimdLevel wanted;
    if (std::strcmp(request, "scalar") == 0)
        wanted = SimdLevel::Scalar;
    else if (std::strcmp(request, "sse2") == 0)
        wanted = SimdLevel::Sse2;
    else if (std::strcmp(request, "avx2") == 0)
        wanted = SimdLevel::Avx2;
    else {
        nsrf_warn("NSRF_SIMD=%s is not scalar/sse2/avx2; using %s",
                  request, simdLevelName(level));
        return level;
    }
    if (!simdLevelSupported(wanted)) {
        nsrf_warn("NSRF_SIMD=%s not supported by this build/CPU; "
                  "using %s",
                  request, simdLevelName(level));
        return level;
    }
    return wanted;
}

} // namespace

const char *
simdLevelName(SimdLevel level)
{
    switch (level) {
      case SimdLevel::Scalar: return "scalar";
      case SimdLevel::Sse2: return "sse2";
      case SimdLevel::Avx2: return "avx2";
    }
    return "?";
}

bool
simdLevelCompiled(SimdLevel level)
{
    if (level == SimdLevel::Scalar)
        return true;
#if NSRF_SIMD_X86
    return level == SimdLevel::Sse2 || level == SimdLevel::Avx2;
#else
    return false;
#endif
}

bool
simdLevelSupported(SimdLevel level)
{
    if (!simdLevelCompiled(level))
        return false;
#if NSRF_SIMD_X86
    // SSE2 is part of the x86-64 baseline; only AVX2 needs a probe.
    if (level == SimdLevel::Avx2)
        return __builtin_cpu_supports("avx2") != 0;
#endif
    return true;
}

SimdLevel
bestSimdLevel()
{
    if (simdLevelSupported(SimdLevel::Avx2))
        return SimdLevel::Avx2;
    if (simdLevelSupported(SimdLevel::Sse2))
        return SimdLevel::Sse2;
    return SimdLevel::Scalar;
}

SimdLevel
activeSimdLevel()
{
    static const SimdLevel level = resolveActiveLevel();
    return level;
}

} // namespace nsrf
