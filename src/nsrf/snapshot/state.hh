/**
 * @file
 * Per-subsystem snapshot images and the access shim that moves state
 * between live objects and those images.
 *
 * Restore is strictly two-phase so a bad snapshot can never leave a
 * simulator half-mutated:
 *
 *  1. decode — parse a section payload into a plain-data image,
 *     validating every structural invariant against the (const)
 *     target: sizes, ranges, chain consistency, counter recounts.
 *     Touches nothing but local data; any violation fails the load.
 *  2. apply — copy a validated image into the target.  Cannot fail.
 *
 * SnapshotAccess is the single friend every simulated structure
 * grants; it holds the save/decode/apply statics for each snapshot
 * section.  The images serialize in canonical order (maps sorted by
 * key, the recency heap sorted as a multiset), so two runs with the
 * same simulated history produce byte-identical snapshots even when
 * their transient container layouts differ.
 */

#ifndef NSRF_SNAPSHOT_STATE_HH
#define NSRF_SNAPSHOT_STATE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "nsrf/mem/memsys.hh"
#include "nsrf/regfile/regfile.hh"
#include "nsrf/sim/simulator.hh"
#include "nsrf/snapshot/format.hh"

namespace nsrf::snapshot
{

/** TraceSimulator loop and runtime state (section "sim"). */
struct SimImage
{
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    std::uint64_t current = 0;
    std::uint64_t currentHandle = 0;
    std::uint64_t scratch = 0;
    std::uint64_t eventsConsumed = 0;
    std::uint64_t sawEnd = 0;
    std::uint64_t boundCount = 0;
    std::uint64_t useClock = 0;
    std::uint64_t cidEvictions = 0;
    std::uint64_t dataRngPos = 0;
    /** 4 per entry: handle, cid, frame, lastUse; sorted by handle. */
    std::vector<std::uint64_t> handles;
    /** 2 per entry: lastUse, handle; the recency heap as a sorted
     * multiset (pop order is multiset order, so the layout is free). */
    std::vector<std::uint64_t> lruHeap;
};

/** Cid/frame allocator state (section "alloc"). */
struct AllocImage
{
    std::uint64_t cidCapacity = 0;
    std::uint64_t cidNext = 0;
    std::uint64_t cidInUse = 0;
    std::vector<std::uint64_t> cidFree; //!< verbatim (pop order)
    std::vector<std::uint64_t> cidLive; //!< 0/1 per cid
    std::uint64_t frameBase = 0;
    std::uint64_t frameBytes = 0;
    std::uint64_t frameNext = 0;
    std::uint64_t frameInUse = 0;
    std::vector<std::uint64_t> frameFree; //!< verbatim (pop order)
};

/** Sparse main-memory contents and counters (section "mem"). */
struct MemImage
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    struct Page
    {
        std::uint64_t number = 0;
        /** 2 per entry: word index, value; ascending indices. */
        std::vector<std::uint64_t> words;
    };
    /** Every touched page (existence is state), ascending. */
    std::vector<Page> pages;
};

/** Data-cache tags and counters (section "dcache"). */
struct CacheImage
{
    std::uint64_t present = 0;
    std::uint64_t clock = 0;
    /** 4 per line: tag, valid, dirty, lastUse; array order. */
    std::vector<std::uint64_t> lines;
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0;
};

/** cam::ReplacementState, all kinds, verbatim. */
struct ReplImage
{
    std::uint64_t kind = 0;
    std::uint64_t heldCount = 0;
    std::vector<std::uint64_t> held;      //!< 0/1 per slot
    std::vector<std::uint64_t> next;      //!< slot_count + 1 links
    std::vector<std::uint64_t> prev;
    std::vector<std::uint64_t> heldSlots; //!< Random candidates
    std::vector<std::uint64_t> rng;       //!< xoshiro state, 4 words
};

/** regfile::Ctable translations. */
struct CtableImage
{
    std::uint64_t capacity = 0;
    /** 2 per entry: cid, frame; ascending cids. */
    std::vector<std::uint64_t> mappings;
};

/** cam::AssociativeDecoder tags, chains, free map, counters. */
struct DecoderImage
{
    std::vector<std::uint64_t> freeWords; //!< bit set = line free
    /** 3 per valid line: line, cid, lineOffset; ascending lines. */
    std::vector<std::uint64_t> tags;
    /** Chain links verbatim: the per-context chain order decides
     * bulk-spill order and therefore cache state downstream. */
    std::vector<std::uint64_t> chainNext;
    std::vector<std::uint64_t> chainPrev;
    std::uint64_t searches = 0;
    std::uint64_t hits = 0;
    std::uint64_t programs = 0;
    std::uint64_t invalidates = 0;
};

/** One stats::TimeWeightedMean. */
struct TwmImage
{
    std::uint64_t started = 0;
    std::uint64_t last = 0;
    std::uint64_t elapsed = 0;
    double weighted = 0.0;
    double current = 0.0;
    double max = 0.0;
};

/** Any RegisterFile organization (section "regfile"). */
struct RegfileImage
{
    /** 0 = named-state, 1 = segmented/conventional, 2 = windowed. */
    std::uint64_t family = 0;

    // RegisterFile base.
    std::uint64_t current = 0;
    std::uint64_t clock = 0;
    std::vector<std::uint64_t> counters; //!< the 12 RegFileStats
    std::uint64_t stallCycles = 0;
    TwmImage activeRegs;
    TwmImage residentContexts;

    // Named-state.
    std::vector<std::uint64_t> array;
    /** Packed valid|dirty metadata, 0..3 per slot (v2 layout; v1
     * containers decode their separate bit vectors into this). */
    std::vector<std::uint64_t> meta;
    struct NsfCtx
    {
        std::uint64_t cid = 0;
        std::vector<std::uint64_t> validInMem; //!< 0/1
        std::uint64_t residentLines = 0;
        std::uint64_t residentLiveRegs = 0;
    };
    std::vector<NsfCtx> nsfCtxs; //!< ascending cids
    std::uint64_t activeCount = 0;
    std::uint64_t residentCtxCount = 0;
    std::uint64_t lastNotedActive = 0;
    std::uint64_t lastNotedResident = 0;
    std::uint64_t traceDirtyWords = 0;
    DecoderImage decoder;

    // Segmented / windowed storage (frames or windows).
    struct FrameImg
    {
        std::uint64_t inUse = 0;
        std::uint64_t cid = 0;
        /** Verbatim, including stale words of spilled frames: a
         * valid-bit reload skips dead words, so stale contents are
         * architecturally visible afterwards. */
        std::vector<std::uint64_t> regs;
    };
    std::vector<FrameImg> frames;
    struct SlotCtx
    {
        std::uint64_t cid = 0;
        std::vector<std::uint64_t> live;       //!< 0/1
        std::uint64_t liveCount = 0;
        std::vector<std::uint64_t> validInMem; //!< segmented only
        std::uint64_t everSpilled = 0;
        std::uint64_t order = 0;               //!< windowed only
    };
    std::vector<SlotCtx> slotCtxs; //!< ascending cids
    std::uint64_t slotActiveCount = 0;
    std::uint64_t nextOrder = 0;   //!< windowed
    std::uint64_t overflows = 0;   //!< windowed
    std::uint64_t underflows = 0;  //!< windowed

    ReplImage repl;     //!< nsf + segmented
    CtableImage ctable; //!< all organizations
};

/**
 * The one friend of every simulated structure: static save (live ->
 * payload), decode (payload -> validated image), and apply (image ->
 * live) helpers per snapshot section.
 */
struct SnapshotAccess
{
    // --- const views the simulator does not expose publicly ---
    static const mem::MemorySystem &
    memsysOf(const sim::TraceSimulator &sim)
    {
        return sim.memsys_;
    }
    static const regfile::RegisterFile &
    regfileOf(const sim::TraceSimulator &sim)
    {
        return *sim.rf_;
    }

    // --- save: serialize live state into a section payload ---
    static std::string saveSim(const sim::TraceSimulator &sim);
    static std::string saveAlloc(const sim::TraceSimulator &sim);
    static std::string saveMem(const mem::MainMemory &memory);
    static std::string saveCache(const mem::MemorySystem &memsys);
    /** @p version selects the container layout to emit; only the
     * compat tests pass anything but the current version. */
    static std::string saveRegfile(const regfile::RegisterFile &rf,
                                   unsigned version =
                                       kSnapshotVersion);

    // --- decode: parse + validate against the (unmodified) target ---
    static bool decodeSim(const std::string &payload,
                          const sim::TraceSimulator &sim,
                          SimImage *img, std::string *why);
    static bool decodeAlloc(const std::string &payload,
                            const sim::TraceSimulator &sim,
                            AllocImage *img, std::string *why);
    static bool decodeMem(const std::string &payload, MemImage *img,
                          std::string *why);
    static bool decodeCache(const std::string &payload,
                            const mem::MemorySystem &memsys,
                            CacheImage *img, std::string *why);
    /** @p version is the container version the payload came from;
     * older versions take the backward-compat parse path. */
    static bool decodeRegfile(const std::string &payload,
                              unsigned version,
                              const regfile::RegisterFile &rf,
                              RegfileImage *img, std::string *why);

    // --- apply: copy a validated image into the target (no-fail) ---
    static void applySim(const SimImage &img,
                         sim::TraceSimulator &sim);
    static void applyAlloc(const AllocImage &img,
                           sim::TraceSimulator &sim);
    static void applyMem(const MemImage &img, mem::MainMemory &memory);
    static void applyCache(const CacheImage &img,
                           mem::MemorySystem &memsys);
    static void applyRegfile(const RegfileImage &img,
                             regfile::RegisterFile &rf);
};

} // namespace nsrf::snapshot

#endif // NSRF_SNAPSHOT_STATE_HH
