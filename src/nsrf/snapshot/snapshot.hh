/**
 * @file
 * Versioned, fingerprinted, bit-exact snapshots of the simulator
 * stack.
 *
 * A snapshot captures everything a TraceSimulator run has computed —
 * the event-loop state, the register file (any organization,
 * including the CAM decoder and replacement machinery), allocators,
 * main memory, the data cache, and every accumulated statistic — so
 * that restoring it into a freshly built simulator and continuing
 * produces results bit-identical to the uninterrupted run.
 *
 * Generator state is deliberately NOT captured: the snapshot records
 * how many trace events were consumed, and resume re-decodes a fresh
 * generator and skips that many (skipEvents).  This keeps snapshots
 * valid for any generator implementation and makes the warmup-prefix
 * optimization natural: sweep cells sharing a (workload, seed)
 * prefix restore one prefix snapshot and simulate only their
 * divergent tails (see prefix.hh).
 *
 * Snapshots are addressed by a serve::Fingerprint of the originating
 * SimConfig and provenance with the instruction cap zeroed —
 * cap-independence is what lets a prefix snapshot taken at K steps
 * restore into a run capped at M > K.  Every load verifies the
 * container digests, the fingerprint, and the full structural
 * invariants of each section against the target before mutating
 * anything: a corrupt, truncated, version-skewed, or mismatched
 * snapshot fails closed and the caller falls back to a cold run.
 */

#ifndef NSRF_SNAPSHOT_SNAPSHOT_HH
#define NSRF_SNAPSHOT_SNAPSHOT_HH

#include <cstdint>
#include <string>

#include "nsrf/serve/fingerprint.hh"
#include "nsrf/sim/simulator.hh"
#include "nsrf/sim/trace.hh"

namespace nsrf::snapshot
{

/**
 * The identity a simulator snapshot is addressed by: the cell
 * fingerprint of @p config with maxInstructions forced to zero
 * (snapshots are cap-independent) and a marker pair appended so
 * snapshot entries can never collide with RunResult cache entries
 * for the same cell.
 */
serve::Fingerprint simulatorIdentity(
    const sim::SimConfig &config,
    const serve::Provenance &provenance);

/**
 * Serialize the complete state of @p sim under @p identity.
 * Valid mid-run (between beginRun and finishRun) or after a
 * completed run; the simulator is not modified.
 */
std::string saveSimulator(const sim::TraceSimulator &sim,
                          const serve::Fingerprint &identity);

/**
 * Restore @p bytes into @p sim, which must be freshly built from
 * the same configuration (same register file geometry, cache
 * shape, cid capacity) and have beginRun() active.  Verifies the
 * container, the @p identity, and every structural invariant before
 * touching the target: on a false return with the parse/validation
 * stage failing, @p sim is exactly as it was.  (A post-apply audit
 * backstops the validators; if that final stage ever fails the
 * target must be discarded — it cannot by then be half-restored
 * back.)  @p why receives the reason on failure.
 */
bool restoreSimulator(const std::string &bytes,
                      const serve::Fingerprint &identity,
                      sim::TraceSimulator *sim, std::string *why);

/**
 * Serialize just @p rf as a standalone blob (the fuzzer's
 * checkpoint/restore leg).  Addressed by a fingerprint of the
 * register file's own description.
 */
std::string saveRegisterFileBlob(const regfile::RegisterFile &rf);

/** Restore a saveRegisterFileBlob image into a freshly built @p rf
 * of the same geometry; same fail-closed contract as
 * restoreSimulator. */
bool restoreRegisterFileBlob(const std::string &bytes,
                             regfile::RegisterFile *rf,
                             std::string *why);

/**
 * Write @p bytes to @p path, detecting short writes (disk full,
 * RLIMIT_FSIZE): on any failure the partial file is removed so a
 * later run can never load a truncated snapshot from the final
 * name.  @return false with @p why set on failure.
 */
bool writeSnapshotFile(const std::string &path,
                       const std::string &bytes, std::string *why);

/** Read @p path entirely; @return false when it cannot be read. */
bool readSnapshotFile(const std::string &path, std::string *out);

/**
 * Discard @p count events from @p gen — the resume half of the
 * generator-state contract (see eventsConsumed()).  @return false
 * if the stream ended early (snapshot/generator mismatch).
 */
bool skipEvents(sim::TraceGenerator &gen, std::uint64_t count);

} // namespace nsrf::snapshot

#endif // NSRF_SNAPSHOT_SNAPSHOT_HH
