/**
 * @file
 * Delta-resimulation for sweeps: cells sharing a (workload, seed)
 * warmup prefix restore a prefix snapshot and simulate only their
 * divergent tails.
 *
 * Every sweep cell's first K instructions depend only on its config
 * and its generator — exactly what a snapshot identity hashes — so
 * the runner captures a snapshot of each cell at K instructions the
 * first time it sees the cell and stores it in a
 * serve::ResultCache, addressed by simulatorIdentity(config,
 * provenance + prefix marker).  Later sweeps over the same cell
 * (parameter refinements, repeated benches, resumed sweeps) restore
 * the prefix and run only instructions K..cap.
 *
 * Determinism contract: hit and miss take the *same* continue path
 * (fresh generator, fresh simulator, restore, skip, drain), and the
 * snapshot round-trip is bit-exact, so RunResults are byte-identical
 * to a cold SweepRunner::run whatever mix of hits and misses a call
 * sees.  Any restore failure (corrupt cache entry, config skew)
 * falls back to a cold run of the affected cells through a real
 * SweepRunner — never a partial resume.
 */

#ifndef NSRF_SNAPSHOT_PREFIX_HH
#define NSRF_SNAPSHOT_PREFIX_HH

#include <cstdint>
#include <vector>

#include "nsrf/serve/cache.hh"
#include "nsrf/serve/scheduler.hh"
#include "nsrf/sim/sweep.hh"

namespace nsrf::snapshot
{

/** What one runSweepWithPrefix call did. */
struct PrefixSweepStats
{
    std::uint64_t cells = 0;          //!< cells simulated
    std::uint64_t prefixRestored = 0; //!< cells resumed from snapshot
    std::uint64_t prefixCaptured = 0; //!< prefix snapshots captured
    std::uint64_t coldCells = 0;      //!< ineligible or fallback
    /** Instructions served from snapshots instead of re-simulated
     * (counted for cache hits only — a capture still pays them). */
    std::uint64_t stepsSkipped = 0;
};

/**
 * Run @p cells like SweepRunner(jobs).run(cells), resuming each
 * eligible cell from a @p prefixSteps-instruction prefix snapshot
 * stored in @p cache (captured on first sight).  Results are written
 * to @p results in cell order, byte-identical to a cold run.
 *
 * A cell is eligible when @p prefixSteps > 0 and its instruction cap
 * is 0 (trace length) or >= @p prefixSteps; cells capturing a
 * timeline (traceOut) and cells of an ineligible lane group run cold.
 * Lane groups capture and restore lane-by-lane but decode their
 * shared event stream once per pass, preserving the lane-batching
 * economics; a lane whose cap equals @p prefixSteps restores as
 * already-done and coasts while the group drains.
 *
 * @param cache snapshot store; nullptr uses a transient in-memory
 *              cache (prefixes then only amortize within one call).
 * @param laneChunk events decoded per chunk when stepping lane
 *              groups (0 = SweepRunner::kDefaultLaneChunk).  Like
 *              the cold runner's knob, any chunk size is
 *              bit-identical.
 */
PrefixSweepStats runSweepWithPrefix(
    serve::ResultCache *cache, unsigned jobs,
    std::uint64_t prefixSteps,
    const std::vector<sim::SweepCell> &cells,
    std::vector<sim::RunResult> *results,
    std::size_t laneChunk = 0);

/**
 * Adapt runSweepWithPrefix into a serve::BatchRunner so the serving
 * path (BatchScheduler dispatch, runCellsCached cold batches) can
 * resume cells from prefix snapshots.  The dependency points this
 * way — nsrf_snapshot links nsrf_serve — so the serve layer takes
 * the runner by injection (BatchScheduler::Config::runner, the
 * runCellsCached runner argument) and this factory is the thing to
 * inject.
 *
 * @param cache  snapshot store for the prefixes — usually the same
 *               ResultCache the scheduler serves results from.
 * @param accum  when non-null, each batch's PrefixSweepStats is
 *               added into it (internally synchronized; read it
 *               after the batches you care about completed, e.g.
 *               after wait()/drain()).
 */
serve::BatchRunner makePrefixBatchRunner(
    serve::ResultCache *cache, unsigned jobs,
    std::uint64_t prefixSteps, PrefixSweepStats *accum = nullptr);

} // namespace nsrf::snapshot

#endif // NSRF_SNAPSHOT_PREFIX_HH
