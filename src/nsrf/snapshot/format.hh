/**
 * @file
 * The on-disk snapshot container and its field codec.
 *
 * A snapshot is a line-based text file mirroring the serve codec's
 * bit-cast discipline (serve/codec.cc): every integer is strict
 * decimal, every double is its 64-bit pattern as exactly 16 lowercase
 * hex digits, so encode(decode(x)) == x byte for byte and
 * decode(encode(x)) == x bit for bit.
 *
 * Layout:
 *
 *   nsrfsnap 1 <serve-schema-version>
 *   fingerprint <32 hex digits>
 *   sections <n>
 *   section <name> <offset> <length> <fnv64 hex>      (n lines)
 *   body <total-length> <fnv64 hex>
 *   <total-length bytes of concatenated section payloads>
 *
 * Offsets are relative to the first body byte.  The whole-body and
 * per-section FNV-1a digests, the declared lengths, and the header
 * grammar are all verified before a single payload byte is decoded;
 * any mismatch fails the load closed (the caller treats it as a cold
 * run).  The section payloads themselves are sequences of
 * `key v1 v2 ...` lines produced by FieldWriter and consumed in the
 * same order by FieldParser.
 */

#ifndef NSRF_SNAPSHOT_FORMAT_HH
#define NSRF_SNAPSHOT_FORMAT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "nsrf/serve/fingerprint.hh"

namespace nsrf::snapshot
{

/** Container format version (independent of serve::kSchemaVersion,
 * which rides along so generator-semantics bumps also invalidate
 * snapshots).  Version history:
 *   1 — original layout; NSF metadata as nsf.valid + nsf.dirty
 *       bit vectors
 *   2 — NSF metadata as one packed nsf.meta vector (bit 0 valid,
 *       bit 1 dirty), matching the SoA hot-state layout */
inline constexpr unsigned kSnapshotVersion = 2;

/** Oldest container version the parser still accepts.  Decoders keep
 * a read path for every version in [min, current]; writers always
 * emit the current version. */
inline constexpr unsigned kSnapshotVersionMin = 1;

/** 64-bit FNV-1a over @p size bytes. */
std::uint64_t fnv1a(const void *data, std::size_t size);

/** Accumulates `key value...` lines for one section payload. */
class FieldWriter
{
  public:
    /** Append `key <decimal>`. */
    void u64(const char *key, std::uint64_t value);

    /** Append `key <16-hex bit pattern>` (exact double). */
    void f64(const char *key, double value);

    /** Append `key <n> v1 ... vn` (decimal elements). */
    void u64vec(const char *key,
                const std::vector<std::uint64_t> &values);

    /** @return the accumulated payload. */
    std::string take() { return std::move(out_); }

  private:
    std::string out_;
};

/**
 * Strict sequential reader over a FieldWriter payload.  Every
 * accessor demands the exact next key; the first grammar violation
 * latches an error and fails every later call, so decoders can
 * chain reads and check ok() once.
 */
class FieldParser
{
  public:
    explicit FieldParser(const std::string &payload);

    bool u64(const char *key, std::uint64_t *value);
    bool f64(const char *key, double *value);
    bool u64vec(const char *key, std::vector<std::uint64_t> *values);

    /** @return true when no read so far has failed. */
    bool ok() const { return why_.empty(); }

    /** @return true when ok() and every line was consumed. */
    bool atEnd();

    /** @return a description of the first failure. */
    const std::string &why() const { return why_; }

  private:
    bool fail(const std::string &why);
    bool nextLine(const char *key,
                  std::vector<std::string> *fields);

    const std::string &payload_;
    std::size_t pos_ = 0;
    std::string why_;
};

/** Assembles section payloads into a snapshot file image. */
class SnapshotBuilder
{
  public:
    /** Append one section; names must be unique and blank-free. */
    void addSection(const std::string &name, std::string payload);

    /**
     * @return the complete snapshot bytes for @p identity.
     * @p version must lie in [kSnapshotVersionMin, kSnapshotVersion];
     * anything but the default exists for the backward-compat tests,
     * which author genuine old-version containers.
     */
    std::string finish(const serve::Fingerprint &identity,
                       unsigned version = kSnapshotVersion) const;

  private:
    std::vector<std::pair<std::string, std::string>> sections_;
};

/** A parsed-and-verified snapshot. */
struct SnapshotView
{
    /** Container version the file declared (within the accepted
     * range); section decoders branch on it for compat reads. */
    unsigned version = kSnapshotVersion;
    serve::Fingerprint fingerprint;
    /** Section name -> payload, in file order. */
    std::vector<std::pair<std::string, std::string>> sections;

    /** @return the payload of @p name, or nullptr. */
    const std::string *find(const std::string &name) const;
};

/**
 * Parse and verify a snapshot container: header grammar, magic,
 * versions, declared lengths vs. actual size (truncation), the
 * whole-body digest, and every per-section digest.  @return false
 * with @p why set on the first violation; @p out is untouched on
 * failure.
 */
bool parseSnapshot(const std::string &bytes, SnapshotView *out,
                   std::string *why);

} // namespace nsrf::snapshot

#endif // NSRF_SNAPSHOT_FORMAT_HH
