#include "nsrf/snapshot/prefix.hh"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "nsrf/common/logging.hh"
#include "nsrf/snapshot/snapshot.hh"

namespace nsrf::snapshot
{

namespace
{

/** The cache key of @p cell's @p prefix_steps-instruction prefix. */
serve::Fingerprint
prefixKey(const sim::SweepCell &cell, std::uint64_t prefix_steps)
{
    serve::Provenance prov = cell.provenance;
    prov.emplace_back("snapshot-prefix-steps",
                      std::to_string(prefix_steps));
    return simulatorIdentity(cell.config, prov);
}

/** Feed @p gen into @p sim until the run finishes or the stream
 * ends. */
void
drainRun(sim::TraceSimulator &sim, sim::TraceGenerator &gen)
{
    constexpr std::size_t chunk_capacity = 512;
    sim::TraceEvent chunk[chunk_capacity];
    while (true) {
        std::size_t n = gen.fill(chunk, chunk_capacity);
        if (n == 0)
            break;
        if (!sim.stepRun(chunk, n))
            break;
    }
}

/**
 * Feed @p gen into every lane of @p sims lane-major until all runs
 * finish or the stream ends, prefetching for lane i+1 while lane i
 * steps — the same interleaving (and therefore the same
 * bit-identity argument) as the cold runner's lane-group loop.
 */
void
drainLanes(std::vector<std::unique_ptr<sim::TraceSimulator>> &sims,
           sim::TraceGenerator &gen, std::size_t chunk_capacity)
{
    std::vector<sim::TraceEvent> chunk(chunk_capacity);
    bool live = true;
    while (live) {
        std::size_t n = gen.fill(chunk.data(), chunk_capacity);
        if (n == 0)
            break;
        live = false;
        for (std::size_t s = 0; s < sims.size(); ++s) {
            if (s + 1 < sims.size())
                sims[s + 1]->prefetchFor(chunk.data(), n);
            // Always step every lane: |= would short-circuit.
            bool more = sims[s]->stepRun(chunk.data(), n);
            live = live || more;
        }
    }
}

/** Simulate @p cell's prefix and store its snapshot under @p key. */
std::string
capturePrefix(const sim::SweepCell &cell, std::uint64_t prefix_steps,
              const serve::Fingerprint &key,
              serve::ResultCache &cache)
{
    auto gen = cell.makeGenerator();
    sim::SimConfig prefix_config = cell.config;
    prefix_config.maxInstructions = prefix_steps;
    sim::TraceSimulator capture(prefix_config);
    capture.beginRun();
    drainRun(capture, *gen);
    // Snapshot the paused run; the capture simulator is discarded
    // without finishRun (finalizing would mutate occupancy stats
    // past the prefix point).
    std::string bytes = saveSimulator(capture, key);
    cache.put(key, bytes);
    return bytes;
}

/**
 * Resume @p cell from @p bytes and run it to completion.  @return
 * false (without touching @p result) when the snapshot does not
 * restore — the caller reruns the cell cold.
 */
bool
resumeCell(const sim::SweepCell &cell, const serve::Fingerprint &key,
           const std::string &bytes, sim::RunResult *result,
           std::uint64_t *resumed_at)
{
    auto gen = cell.makeGenerator();
    sim::TraceSimulator sim(cell.config);
    sim.beginRun();
    std::string why;
    if (!restoreSimulator(bytes, key, &sim, &why)) {
        nsrf_warn("prefix snapshot for cell '%s' did not restore "
                  "(%s); running cold",
                  cell.label.c_str(), why.c_str());
        return false;
    }
    if (!skipEvents(*gen, sim.eventsConsumed())) {
        nsrf_warn("cell '%s' generator is shorter than its prefix "
                  "snapshot; running cold",
                  cell.label.c_str());
        return false;
    }
    *resumed_at = sim.instructionsRun();
    drainRun(sim, *gen);
    *result = sim.finishRun();
    return true;
}

} // namespace

PrefixSweepStats
runSweepWithPrefix(serve::ResultCache *cache, unsigned jobs,
                   std::uint64_t prefix_steps,
                   const std::vector<sim::SweepCell> &cells,
                   std::vector<sim::RunResult> *results,
                   std::size_t laneChunk)
{
    PrefixSweepStats stats;
    stats.cells = cells.size();
    results->assign(cells.size(), sim::RunResult{});
    if (cells.empty())
        return stats;
    const std::size_t chunk_capacity =
        laneChunk == 0 ? sim::SweepRunner::kDefaultLaneChunk
                       : laneChunk;

    // Without a store, prefixes still dedup within this call.
    std::unique_ptr<serve::ResultCache> transient;
    if (!cache) {
        serve::ResultCacheConfig cache_config;
        transient =
            std::make_unique<serve::ResultCache>(cache_config);
        cache = transient.get();
    }

    // Partition exactly as SweepRunner::run does (same shared
    // partitioner, same jobs), so the lanes that batch here are the
    // lanes that batch there — including any jobs-aware group
    // splits.
    std::vector<std::vector<std::size_t>> units =
        sim::partitionSweepUnits(cells, jobs);

    auto eligible = [&](const sim::SweepCell &cell) {
        return prefix_steps > 0 && cell.traceOut.empty() &&
               (cell.config.maxInstructions == 0 ||
                cell.config.maxInstructions >= prefix_steps);
    };

    // Cells that cannot (or fail to) resume collect here and run
    // through a real SweepRunner afterwards — cold semantics by
    // construction, including timeline capture and lane batching.
    std::mutex cold_mutex;
    std::vector<std::size_t> cold;
    auto goCold = [&](const std::vector<std::size_t> &unit) {
        std::lock_guard<std::mutex> lock(cold_mutex);
        cold.insert(cold.end(), unit.begin(), unit.end());
    };

    std::atomic<std::uint64_t> restored{0}, captured{0}, skipped{0};

    sim::parallelFor(jobs, units.size(), [&](std::size_t u) {
        const auto &unit = units[u];
        for (std::size_t i : unit) {
            if (!eligible(cells[i])) {
                goCold(unit);
                return;
            }
        }

        // Fetch or capture every lane's prefix snapshot.  Capture
        // lanes share one decoded stream, same as the cold runner.
        std::vector<serve::Fingerprint> keys(unit.size());
        std::vector<std::string> snaps(unit.size());
        std::vector<std::size_t> missing;
        for (std::size_t k = 0; k < unit.size(); ++k) {
            keys[k] = prefixKey(cells[unit[k]], prefix_steps);
            if (auto hit = cache->get(keys[k]))
                snaps[k] = std::move(*hit);
            else
                missing.push_back(k);
        }
        if (!missing.empty()) {
            if (unit.size() == 1) {
                snaps[0] = capturePrefix(cells[unit[0]], prefix_steps,
                                         keys[0], *cache);
            } else {
                auto gen = cells[unit.front()].makeGenerator();
                std::vector<std::unique_ptr<sim::TraceSimulator>>
                    sims;
                sims.reserve(missing.size());
                for (std::size_t k : missing) {
                    sim::SimConfig prefix_config =
                        cells[unit[k]].config;
                    prefix_config.maxInstructions = prefix_steps;
                    sims.push_back(
                        std::make_unique<sim::TraceSimulator>(
                            prefix_config));
                    sims.back()->beginRun();
                }
                drainLanes(sims, *gen, chunk_capacity);
                for (std::size_t m = 0; m < missing.size(); ++m) {
                    std::size_t k = missing[m];
                    snaps[k] = saveSimulator(*sims[m], keys[k]);
                    cache->put(keys[k], snaps[k]);
                }
            }
            captured.fetch_add(missing.size(),
                               std::memory_order_relaxed);
        }

        if (unit.size() == 1) {
            std::uint64_t resumed_at = 0;
            if (!resumeCell(cells[unit[0]], keys[0], snaps[0],
                            &(*results)[unit[0]], &resumed_at)) {
                goCold(unit);
                return;
            }
            restored.fetch_add(1, std::memory_order_relaxed);
            if (missing.empty()) {
                skipped.fetch_add(resumed_at,
                                  std::memory_order_relaxed);
            }
            return;
        }

        // Lane group resume: restore every lane, then drain one
        // shared generator from the common resume point.
        auto gen = cells[unit.front()].makeGenerator();
        std::vector<std::unique_ptr<sim::TraceSimulator>> sims;
        sims.reserve(unit.size());
        for (std::size_t k = 0; k < unit.size(); ++k) {
            sims.push_back(std::make_unique<sim::TraceSimulator>(
                cells[unit[k]].config));
            sims.back()->beginRun();
            std::string why;
            if (!restoreSimulator(snaps[k], keys[k], sims.back().get(),
                                  &why)) {
                nsrf_warn("prefix snapshot for lane '%s' did not "
                          "restore (%s); group runs cold",
                          cells[unit[k]].label.c_str(), why.c_str());
                goCold(unit);
                return;
            }
            if (sims.back()->eventsConsumed() !=
                sims.front()->eventsConsumed()) {
                nsrf_warn("lane '%s' resumes at a different stream "
                          "position than its group; group runs cold",
                          cells[unit[k]].label.c_str());
                goCold(unit);
                return;
            }
        }
        if (!skipEvents(*gen, sims.front()->eventsConsumed())) {
            nsrf_warn("lane group '%s' generator is shorter than its "
                      "prefix snapshots; group runs cold",
                      cells[unit.front()].streamKey.c_str());
            goCold(unit);
            return;
        }
        drainLanes(sims, *gen, chunk_capacity);
        for (std::size_t k = 0; k < unit.size(); ++k) {
            std::uint64_t resumed_at = sims[k]->instructionsRun();
            // A restored lane whose cap equals the prefix is already
            // done and coasted through the drain above.
            (*results)[unit[k]] = sims[k]->finishRun();
            restored.fetch_add(1, std::memory_order_relaxed);
            if (std::find(missing.begin(), missing.end(), k) ==
                missing.end()) {
                // resumed_at here is post-drain; the skip is the
                // snapshot's instruction count, which for a hit lane
                // equals the group prefix.
                skipped.fetch_add(
                    std::min<std::uint64_t>(prefix_steps,
                                            resumed_at),
                    std::memory_order_relaxed);
            }
        }
    });

    stats.prefixRestored = restored.load();
    stats.prefixCaptured = captured.load();
    stats.stepsSkipped = skipped.load();

    if (!cold.empty()) {
        std::sort(cold.begin(), cold.end());
        std::vector<sim::SweepCell> cold_cells;
        cold_cells.reserve(cold.size());
        for (std::size_t i : cold)
            cold_cells.push_back(cells[i]);
        sim::SweepRunner runner(jobs, laneChunk);
        std::vector<sim::RunResult> cold_results =
            runner.run(cold_cells);
        for (std::size_t k = 0; k < cold.size(); ++k)
            (*results)[cold[k]] = cold_results[k];
        stats.coldCells = cold.size();
    }
    return stats;
}

serve::BatchRunner
makePrefixBatchRunner(serve::ResultCache *cache, unsigned jobs,
                      std::uint64_t prefixSteps,
                      PrefixSweepStats *accum)
{
    // The accumulator is shared by every batch the runner ever
    // executes; its own mutex rides along so concurrent callers
    // (or a dispatcher thread racing a stats reader) stay clean
    // under TSan.
    auto accum_mutex = std::make_shared<std::mutex>();
    return [cache, jobs, prefixSteps, accum, accum_mutex](
               const std::vector<sim::SweepCell> &cells) {
        std::vector<sim::RunResult> results;
        PrefixSweepStats stats = runSweepWithPrefix(
            cache, jobs, prefixSteps, cells, &results);
        if (accum) {
            std::lock_guard<std::mutex> lock(*accum_mutex);
            accum->cells += stats.cells;
            accum->prefixRestored += stats.prefixRestored;
            accum->prefixCaptured += stats.prefixCaptured;
            accum->coldCells += stats.coldCells;
            accum->stepsSkipped += stats.stepsSkipped;
        }
        return results;
    };
}

} // namespace nsrf::snapshot
