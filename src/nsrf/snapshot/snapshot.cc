#include "nsrf/snapshot/snapshot.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "nsrf/common/logging.hh"
#include "nsrf/regfile/named_state.hh"
#include "nsrf/snapshot/format.hh"
#include "nsrf/snapshot/state.hh"

namespace nsrf::snapshot
{

namespace
{

bool
failRestore(std::string *why, std::string message)
{
    if (why)
        *why = std::move(message);
    return false;
}

const std::string *
needSection(const SnapshotView &view, const char *name,
            std::string *why)
{
    const std::string *payload = view.find(name);
    if (!payload && why)
        *why = std::string("snapshot is missing section ") + name;
    return payload;
}

} // namespace

serve::Fingerprint
simulatorIdentity(const sim::SimConfig &config,
                  const serve::Provenance &provenance)
{
    // Cap-independent: a prefix snapshot taken at K instructions must
    // address the same entry whatever cap the resuming run carries.
    sim::SimConfig keyed = config;
    keyed.maxInstructions = 0;
    serve::Provenance marked = provenance;
    // Key on the oldest *readable* version, not the current one:
    // bumping the writer while keeping a compat read path must not
    // orphan every cached prefix snapshot.  Only a compat break
    // (raising kSnapshotVersionMin) re-addresses the cache.
    marked.emplace_back("snapshot-format",
                        std::to_string(kSnapshotVersionMin));
    return serve::fingerprintCell(keyed, marked);
}

std::string
saveSimulator(const sim::TraceSimulator &sim,
              const serve::Fingerprint &identity)
{
    SnapshotBuilder builder;
    builder.addSection("sim", SnapshotAccess::saveSim(sim));
    builder.addSection("alloc", SnapshotAccess::saveAlloc(sim));
    builder.addSection("mem", SnapshotAccess::saveMem(
                                  SnapshotAccess::memsysOf(sim)
                                      .memory()));
    builder.addSection("dcache", SnapshotAccess::saveCache(
                                     SnapshotAccess::memsysOf(sim)));
    builder.addSection("regfile",
                       SnapshotAccess::saveRegfile(
                           SnapshotAccess::regfileOf(sim)));
    return builder.finish(identity);
}

bool
restoreSimulator(const std::string &bytes,
                 const serve::Fingerprint &identity,
                 sim::TraceSimulator *sim, std::string *why)
{
    SnapshotView view;
    if (!parseSnapshot(bytes, &view, why))
        return false;
    if (!(view.fingerprint == identity)) {
        return failRestore(
            why, "snapshot fingerprint " + view.fingerprint.hex() +
                     " does not match the configured cell " +
                     identity.hex());
    }

    const std::string *sim_pay = needSection(view, "sim", why);
    const std::string *alloc_pay = needSection(view, "alloc", why);
    const std::string *mem_pay = needSection(view, "mem", why);
    const std::string *cache_pay = needSection(view, "dcache", why);
    const std::string *rf_pay = needSection(view, "regfile", why);
    if (!sim_pay || !alloc_pay || !mem_pay || !cache_pay || !rf_pay)
        return false;

    // Decode every section against the untouched target first; the
    // target is only mutated once all five validate.
    SimImage sim_img;
    AllocImage alloc_img;
    MemImage mem_img;
    CacheImage cache_img;
    RegfileImage rf_img;
    if (!SnapshotAccess::decodeSim(*sim_pay, *sim, &sim_img, why) ||
        !SnapshotAccess::decodeAlloc(*alloc_pay, *sim, &alloc_img,
                                     why) ||
        !SnapshotAccess::decodeMem(*mem_pay, &mem_img, why) ||
        !SnapshotAccess::decodeCache(*cache_pay, sim->memorySystem(),
                                     &cache_img, why) ||
        !SnapshotAccess::decodeRegfile(*rf_pay, view.version,
                                       sim->registerFile(), &rf_img,
                                       why)) {
        return false;
    }

    SnapshotAccess::applySim(sim_img, *sim);
    SnapshotAccess::applyAlloc(alloc_img, *sim);
    SnapshotAccess::applyMem(mem_img,
                             sim->memorySystem().memory());
    SnapshotAccess::applyCache(cache_img, sim->memorySystem());
    SnapshotAccess::applyRegfile(rf_img, sim->registerFile());

    // Belt and braces: the decode validators should make this
    // unreachable, but the live audit walk is cheap next to a
    // restore and catches any validator gap before it can corrupt
    // downstream results.  The corrupt-matrix tests all fail before
    // apply; a failure here means the target must be discarded.
    if (const auto *nsf =
            dynamic_cast<const regfile::NamedStateRegisterFile *>(
                &sim->registerFile())) {
        std::string audit_why;
        if (!nsf->auditInvariants(&audit_why)) {
            return failRestore(why,
                               "post-restore audit failed (discard "
                               "the target): " +
                                   audit_why);
        }
    }
    return true;
}

std::string
saveRegisterFileBlob(const regfile::RegisterFile &rf)
{
    SnapshotBuilder builder;
    builder.addSection("regfile", SnapshotAccess::saveRegfile(rf));
    return builder.finish(
        serve::hashString("rfblob:" + rf.describe()));
}

bool
restoreRegisterFileBlob(const std::string &bytes,
                        regfile::RegisterFile *rf, std::string *why)
{
    SnapshotView view;
    if (!parseSnapshot(bytes, &view, why))
        return false;
    serve::Fingerprint expect =
        serve::hashString("rfblob:" + rf->describe());
    if (!(view.fingerprint == expect)) {
        return failRestore(why,
                           "register file blob names a different "
                           "organization");
    }
    const std::string *payload = needSection(view, "regfile", why);
    if (!payload)
        return false;
    RegfileImage img;
    if (!SnapshotAccess::decodeRegfile(*payload, view.version, *rf,
                                       &img, why))
        return false;
    SnapshotAccess::applyRegfile(img, *rf);
    return true;
}

bool
writeSnapshotFile(const std::string &path, const std::string &bytes,
                  std::string *why)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        return failRestore(why, "cannot open " + path + ": " +
                                    std::strerror(errno));
    }
    std::size_t wrote =
        bytes.empty()
            ? 0
            : std::fwrite(bytes.data(), 1, bytes.size(), f);
    bool flushed = std::fflush(f) == 0;
    std::fclose(f);
    if (wrote != bytes.size() || !flushed) {
        // A partial file under the final name would load as a
        // truncated snapshot forever after; remove it so the caller
        // (and every later run) sees a clean miss instead.
        std::remove(path.c_str());
        return failRestore(why, "short write to " + path +
                                    " (partial file removed)");
    }
    return true;
}

bool
readSnapshotFile(const std::string &path, std::string *out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    std::string bytes;
    char buf[1u << 16];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.append(buf, got);
    bool ok = std::ferror(f) == 0;
    std::fclose(f);
    if (!ok)
        return false;
    *out = std::move(bytes);
    return true;
}

bool
skipEvents(sim::TraceGenerator &gen, std::uint64_t count)
{
    sim::TraceEvent buf[512];
    while (count > 0) {
        std::size_t want = count < 512
                               ? static_cast<std::size_t>(count)
                               : std::size_t{512};
        std::size_t got = gen.fill(buf, want);
        if (got == 0)
            return false;
        count -= got;
    }
    return true;
}

} // namespace nsrf::snapshot
