#include "nsrf/snapshot/state.hh"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "nsrf/cam/decoder.hh"
#include "nsrf/cam/flat_index.hh"
#include "nsrf/cam/replacement.hh"
#include "nsrf/common/logging.hh"
#include "nsrf/regfile/named_state.hh"
#include "nsrf/regfile/segmented.hh"
#include "nsrf/regfile/windowed.hh"
#include "nsrf/snapshot/format.hh"

namespace nsrf::snapshot
{

namespace
{

constexpr std::uint64_t u32Max = 0xffffffffull;

std::vector<std::uint64_t>
fromBools(const std::vector<bool> &bits)
{
    std::vector<std::uint64_t> out;
    out.reserve(bits.size());
    for (bool b : bits)
        out.push_back(b ? 1 : 0);
    return out;
}

std::vector<bool>
toBools(const std::vector<std::uint64_t> &values)
{
    std::vector<bool> out;
    out.reserve(values.size());
    for (std::uint64_t v : values)
        out.push_back(v != 0);
    return out;
}

bool
isBoolVec(const std::vector<std::uint64_t> &values)
{
    for (std::uint64_t v : values) {
        if (v > 1)
            return false;
    }
    return true;
}

bool
failDecode(std::string *why, std::string message)
{
    if (why)
        *why = std::move(message);
    return false;
}

/** Shared grammar check at the end of every section decode. */
bool
finishParse(FieldParser &parser, const char *section,
            std::string *why)
{
    if (!parser.atEnd()) {
        return failDecode(why, std::string(section) + " section: " +
                                   parser.why());
    }
    return true;
}

} // namespace

// --------------------------------------------------------------------
// sim
// --------------------------------------------------------------------

std::string
SnapshotAccess::saveSim(const sim::TraceSimulator &simulator)
{
    FieldWriter w;
    const auto &loop = simulator.loop_;
    w.u64("instructions", loop.instructions);
    w.u64("cycles", loop.cycles);
    w.u64("current", loop.current);
    w.u64("currentHandle", loop.currentHandle);
    w.u64("scratch", loop.scratch);
    w.u64("eventsConsumed", loop.eventsConsumed);
    w.u64("sawEnd", loop.sawEnd ? 1 : 0);
    w.u64("boundCount", simulator.boundCount_);
    w.u64("useClock", simulator.useClock_);
    w.u64("cidEvictions", simulator.cidEvictions_);
    w.u64("dataRngPos", simulator.dataRng_.position());

    // Canonical order: the map's layout is a transient of insertion
    // history, not simulated state.
    std::vector<std::pair<sim::CtxHandle,
                          sim::TraceSimulator::HandleState>>
        sorted(simulator.handles_.begin(), simulator.handles_.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    std::vector<std::uint64_t> handles;
    handles.reserve(sorted.size() * 4);
    for (const auto &[handle, state] : sorted) {
        handles.push_back(handle);
        handles.push_back(state.cid);
        handles.push_back(state.frame);
        handles.push_back(state.lastUse);
    }
    w.u64vec("handles", handles);

    // The heap as a sorted multiset: pop order is determined by the
    // multiset (recency stamps are unique), so heapifying the sorted
    // form on restore reproduces every later victim choice while two
    // equal histories serialize identically.
    std::vector<std::pair<std::uint64_t, sim::CtxHandle>> heap(
        simulator.lruHeap_.begin(), simulator.lruHeap_.end());
    std::sort(heap.begin(), heap.end());
    std::vector<std::uint64_t> flat;
    flat.reserve(heap.size() * 2);
    for (const auto &[lastUse, handle] : heap) {
        flat.push_back(lastUse);
        flat.push_back(handle);
    }
    w.u64vec("lruHeap", flat);
    return w.take();
}

bool
SnapshotAccess::decodeSim(const std::string &payload,
                          const sim::TraceSimulator &simulator,
                          SimImage *img, std::string *why)
{
    FieldParser p(payload);
    SimImage out;
    p.u64("instructions", &out.instructions);
    p.u64("cycles", &out.cycles);
    p.u64("current", &out.current);
    p.u64("currentHandle", &out.currentHandle);
    p.u64("scratch", &out.scratch);
    p.u64("eventsConsumed", &out.eventsConsumed);
    p.u64("sawEnd", &out.sawEnd);
    p.u64("boundCount", &out.boundCount);
    p.u64("useClock", &out.useClock);
    p.u64("cidEvictions", &out.cidEvictions);
    p.u64("dataRngPos", &out.dataRngPos);
    p.u64vec("handles", &out.handles);
    p.u64vec("lruHeap", &out.lruHeap);
    if (!finishParse(p, "sim", why))
        return false;

    if (out.sawEnd > 1 || out.scratch > u32Max ||
        out.current > u32Max) {
        return failDecode(why, "sim section: field out of range");
    }
    if (out.handles.size() % 4 != 0 || out.lruHeap.size() % 2 != 0)
        return failDecode(why, "sim section: misshapen vector");

    const ContextId cid_capacity = simulator.config().cidCapacity;
    std::uint64_t bound = 0;
    std::unordered_set<std::uint64_t> bound_cids;
    std::uint64_t prev_handle = 0;
    bool have_current_handle = false;
    for (std::size_t i = 0; i < out.handles.size(); i += 4) {
        std::uint64_t handle = out.handles[i];
        std::uint64_t cid = out.handles[i + 1];
        std::uint64_t frame = out.handles[i + 2];
        if (i > 0 && handle <= prev_handle) {
            return failDecode(why,
                              "sim section: handles not ascending");
        }
        prev_handle = handle;
        if (cid != invalidContext && cid >= cid_capacity) {
            return failDecode(
                why, "sim section: handle bound to impossible cid");
        }
        if (frame > u32Max)
            return failDecode(why, "sim section: frame out of range");
        if (cid != invalidContext) {
            ++bound;
            if (!bound_cids.insert(cid).second) {
                return failDecode(
                    why, "sim section: two handles share a cid");
            }
        }
        if (handle == out.currentHandle)
            have_current_handle = true;
    }
    if (bound != out.boundCount) {
        return failDecode(
            why, "sim section: boundCount disagrees with handles");
    }
    if (out.currentHandle != sim::invalidHandle &&
        !have_current_handle) {
        return failDecode(
            why, "sim section: current handle is not mapped");
    }
    *img = std::move(out);
    return true;
}

void
SnapshotAccess::applySim(const SimImage &img,
                         sim::TraceSimulator &simulator)
{
    auto &loop = simulator.loop_;
    loop.instructions = img.instructions;
    loop.cycles = img.cycles;
    loop.current = static_cast<ContextId>(img.current);
    loop.currentHandle = img.currentHandle;
    loop.scratch = static_cast<Word>(img.scratch);
    loop.eventsConsumed = img.eventsConsumed;
    loop.sawEnd = img.sawEnd != 0;
    // The snapshot's own `done` is a function of the cap it was
    // taken under; recompute against *this* run's cap so a prefix
    // snapshot resumes (and a run restored at its cap coasts).
    const std::uint64_t cap = simulator.config().maxInstructions
                                  ? simulator.config().maxInstructions
                                  : ~std::uint64_t{0};
    loop.done = loop.sawEnd || loop.instructions >= cap;

    simulator.boundCount_ =
        static_cast<std::size_t>(img.boundCount);
    simulator.useClock_ = img.useClock;
    simulator.cidEvictions_ = img.cidEvictions;
    simulator.dataRng_.skipTo(img.dataRngPos);

    simulator.handles_.clear();
    simulator.cidToHandle_.clear();
    for (std::size_t i = 0; i < img.handles.size(); i += 4) {
        sim::TraceSimulator::HandleState state;
        state.cid = static_cast<ContextId>(img.handles[i + 1]);
        state.frame = static_cast<Addr>(img.handles[i + 2]);
        state.lastUse = img.handles[i + 3];
        simulator.handles_.emplace(img.handles[i], state);
        if (state.cid != invalidContext)
            simulator.cidToHandle_[state.cid] = img.handles[i];
    }

    simulator.lruHeap_.clear();
    simulator.lruHeap_.reserve(img.lruHeap.size() / 2);
    for (std::size_t i = 0; i < img.lruHeap.size(); i += 2) {
        simulator.lruHeap_.emplace_back(img.lruHeap[i],
                                        img.lruHeap[i + 1]);
    }
    std::make_heap(simulator.lruHeap_.begin(),
                   simulator.lruHeap_.end(), std::greater<>{});
}

// --------------------------------------------------------------------
// alloc
// --------------------------------------------------------------------

std::string
SnapshotAccess::saveAlloc(const sim::TraceSimulator &simulator)
{
    FieldWriter w;
    const auto &cids = simulator.cids_;
    w.u64("cid.capacity", cids.capacity_);
    w.u64("cid.next", cids.next_);
    w.u64("cid.inUse", cids.inUse_);
    std::vector<std::uint64_t> cid_free(cids.freeList_.begin(),
                                        cids.freeList_.end());
    w.u64vec("cid.free", cid_free);
    w.u64vec("cid.live", fromBools(cids.live_));

    const auto &frames = simulator.frames_;
    w.u64("frame.base", frames.base_);
    w.u64("frame.bytes", frames.frameBytes_);
    w.u64("frame.next", frames.next_);
    w.u64("frame.inUse", frames.inUse_);
    std::vector<std::uint64_t> frame_free(frames.freeList_.begin(),
                                          frames.freeList_.end());
    w.u64vec("frame.free", frame_free);
    return w.take();
}

bool
SnapshotAccess::decodeAlloc(const std::string &payload,
                            const sim::TraceSimulator &simulator,
                            AllocImage *img, std::string *why)
{
    FieldParser p(payload);
    AllocImage out;
    p.u64("cid.capacity", &out.cidCapacity);
    p.u64("cid.next", &out.cidNext);
    p.u64("cid.inUse", &out.cidInUse);
    p.u64vec("cid.free", &out.cidFree);
    p.u64vec("cid.live", &out.cidLive);
    p.u64("frame.base", &out.frameBase);
    p.u64("frame.bytes", &out.frameBytes);
    p.u64("frame.next", &out.frameNext);
    p.u64("frame.inUse", &out.frameInUse);
    p.u64vec("frame.free", &out.frameFree);
    if (!finishParse(p, "alloc", why))
        return false;

    const auto &cids = simulator.cids_;
    if (out.cidCapacity != cids.capacity_)
        return failDecode(why, "alloc section: cid capacity skew");
    if (out.cidNext > out.cidCapacity ||
        out.cidLive.size() != out.cidCapacity ||
        !isBoolVec(out.cidLive)) {
        return failDecode(why, "alloc section: bad cid state");
    }
    std::uint64_t live = 0;
    for (std::uint64_t b : out.cidLive)
        live += b;
    if (live != out.cidInUse) {
        return failDecode(
            why, "alloc section: inUse disagrees with live bits");
    }
    std::unordered_set<std::uint64_t> free_seen;
    for (std::uint64_t cid : out.cidFree) {
        if (cid >= out.cidNext || out.cidLive[cid] ||
            !free_seen.insert(cid).second) {
            return failDecode(why,
                              "alloc section: bad cid free list");
        }
    }
    if (out.cidInUse + out.cidFree.size() != out.cidNext) {
        return failDecode(
            why, "alloc section: cid accounting does not balance");
    }

    const auto &frames = simulator.frames_;
    if (out.frameBase != frames.base_ ||
        out.frameBytes != frames.frameBytes_) {
        return failDecode(why, "alloc section: frame geometry skew");
    }
    if (out.frameNext < out.frameBase || out.frameNext > u32Max ||
        (out.frameNext - out.frameBase) % out.frameBytes != 0) {
        return failDecode(why,
                          "alloc section: bad frame high-water mark");
    }
    free_seen.clear();
    for (std::uint64_t frame : out.frameFree) {
        if (frame < out.frameBase || frame >= out.frameNext ||
            (frame - out.frameBase) % out.frameBytes != 0 ||
            !free_seen.insert(frame).second) {
            return failDecode(why,
                              "alloc section: bad frame free list");
        }
    }
    std::uint64_t frame_count =
        (out.frameNext - out.frameBase) / out.frameBytes;
    if (out.frameInUse + out.frameFree.size() != frame_count) {
        return failDecode(
            why, "alloc section: frame accounting does not balance");
    }
    *img = std::move(out);
    return true;
}

void
SnapshotAccess::applyAlloc(const AllocImage &img,
                           sim::TraceSimulator &simulator)
{
    auto &cids = simulator.cids_;
    cids.next_ = static_cast<ContextId>(img.cidNext);
    cids.inUse_ = static_cast<std::size_t>(img.cidInUse);
    cids.freeList_.clear();
    for (std::uint64_t cid : img.cidFree)
        cids.freeList_.push_back(static_cast<ContextId>(cid));
    cids.live_ = toBools(img.cidLive);

    auto &frames = simulator.frames_;
    frames.next_ = static_cast<Addr>(img.frameNext);
    frames.inUse_ = static_cast<std::size_t>(img.frameInUse);
    frames.freeList_.clear();
    for (std::uint64_t frame : img.frameFree)
        frames.freeList_.push_back(static_cast<Addr>(frame));
}

// --------------------------------------------------------------------
// mem
// --------------------------------------------------------------------

std::string
SnapshotAccess::saveMem(const mem::MainMemory &memory)
{
    FieldWriter w;
    w.u64("mem.reads", memory.stats_.reads.value_);
    w.u64("mem.writes", memory.stats_.writes.value_);

    std::vector<std::pair<Addr, const mem::MainMemory::Page *>> pages;
    pages.reserve(memory.pages_.size());
    for (const auto &[number, page] : memory.pages_)
        pages.emplace_back(number, page.get());
    std::sort(pages.begin(), pages.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });

    // Page existence is state (touchedPages feeds audits), so even
    // an all-zero page serializes — as an empty word list.
    w.u64("mem.pageCount", pages.size());
    for (const auto &[number, page] : pages) {
        w.u64("page.number", number);
        std::vector<std::uint64_t> words;
        for (std::size_t i = 0; i < page->size(); ++i) {
            if ((*page)[i] != 0) {
                words.push_back(i);
                words.push_back((*page)[i]);
            }
        }
        w.u64vec("page.words", words);
    }
    return w.take();
}

bool
SnapshotAccess::decodeMem(const std::string &payload, MemImage *img,
                          std::string *why)
{
    FieldParser p(payload);
    MemImage out;
    p.u64("mem.reads", &out.reads);
    p.u64("mem.writes", &out.writes);
    std::uint64_t page_count = 0;
    p.u64("mem.pageCount", &page_count);
    if (p.ok() && page_count > (1u << 20))
        return failDecode(why, "mem section: absurd page count");
    for (std::uint64_t i = 0; p.ok() && i < page_count; ++i) {
        MemImage::Page page;
        p.u64("page.number", &page.number);
        p.u64vec("page.words", &page.words);
        if (!p.ok())
            break;
        if (page.number > u32Max >> 12)
            return failDecode(why, "mem section: page out of range");
        if (!out.pages.empty() &&
            page.number <= out.pages.back().number) {
            return failDecode(why,
                              "mem section: pages not ascending");
        }
        if (page.words.size() % 2 != 0)
            return failDecode(why, "mem section: misshapen page");
        for (std::size_t j = 0; j < page.words.size(); j += 2) {
            if (page.words[j] >= 1024 ||
                (j > 0 && page.words[j] <= page.words[j - 2]) ||
                page.words[j + 1] > u32Max ||
                page.words[j + 1] == 0) {
                return failDecode(why,
                                  "mem section: bad page words");
            }
        }
        out.pages.push_back(std::move(page));
    }
    if (!finishParse(p, "mem", why))
        return false;
    *img = std::move(out);
    return true;
}

void
SnapshotAccess::applyMem(const MemImage &img, mem::MainMemory &memory)
{
    memory.stats_.reads.value_ = img.reads;
    memory.stats_.writes.value_ = img.writes;
    memory.pages_.clear();
    for (const auto &page : img.pages) {
        auto fresh = std::make_unique<mem::MainMemory::Page>();
        fresh->fill(0);
        for (std::size_t j = 0; j < page.words.size(); j += 2) {
            (*fresh)[static_cast<std::size_t>(page.words[j])] =
                static_cast<Word>(page.words[j + 1]);
        }
        memory.pages_.emplace(static_cast<Addr>(page.number),
                              std::move(fresh));
    }
}

// --------------------------------------------------------------------
// dcache
// --------------------------------------------------------------------

std::string
SnapshotAccess::saveCache(const mem::MemorySystem &memsys)
{
    FieldWriter w;
    const mem::DataCache *cache = memsys.cache();
    w.u64("cache.present", cache ? 1 : 0);
    if (!cache)
        return w.take();
    w.u64("cache.clock", cache->clock_);
    std::vector<std::uint64_t> lines;
    lines.reserve(cache->lines_.size() * 4);
    for (const auto &line : cache->lines_) {
        lines.push_back(line.tag);
        lines.push_back(line.valid ? 1 : 0);
        lines.push_back(line.dirty ? 1 : 0);
        lines.push_back(line.lastUse);
    }
    w.u64vec("cache.lines", lines);
    w.u64("cache.accesses", cache->stats_.accesses.value_);
    w.u64("cache.hits", cache->stats_.hits.value_);
    w.u64("cache.misses", cache->stats_.misses.value_);
    w.u64("cache.writebacks", cache->stats_.writebacks.value_);
    return w.take();
}

bool
SnapshotAccess::decodeCache(const std::string &payload,
                            const mem::MemorySystem &memsys,
                            CacheImage *img, std::string *why)
{
    FieldParser p(payload);
    CacheImage out;
    p.u64("cache.present", &out.present);
    if (p.ok() && out.present > 1)
        return failDecode(why, "dcache section: bad present flag");
    const mem::DataCache *cache = memsys.cache();
    if (p.ok() && (out.present == 1) != (cache != nullptr)) {
        return failDecode(
            why, "dcache section: cache presence disagrees with "
                 "the configuration");
    }
    if (out.present) {
        p.u64("cache.clock", &out.clock);
        p.u64vec("cache.lines", &out.lines);
        p.u64("cache.accesses", &out.accesses);
        p.u64("cache.hits", &out.hits);
        p.u64("cache.misses", &out.misses);
        p.u64("cache.writebacks", &out.writebacks);
    }
    if (!finishParse(p, "dcache", why))
        return false;
    if (out.present) {
        if (out.lines.size() != cache->lines_.size() * 4)
            return failDecode(why, "dcache section: line count skew");
        for (std::size_t i = 0; i < out.lines.size(); i += 4) {
            if (out.lines[i] > u32Max || out.lines[i + 1] > 1 ||
                out.lines[i + 2] > 1) {
                return failDecode(why,
                                  "dcache section: bad line state");
            }
        }
    }
    *img = std::move(out);
    return true;
}

void
SnapshotAccess::applyCache(const CacheImage &img,
                           mem::MemorySystem &memsys)
{
    mem::DataCache *cache = memsys.cache();
    if (!img.present) {
        nsrf_assert(!cache, "cache image/config mismatch in apply");
        return;
    }
    nsrf_assert(cache, "cache image/config mismatch in apply");
    cache->clock_ = img.clock;
    for (std::size_t i = 0; i < cache->lines_.size(); ++i) {
        auto &line = cache->lines_[i];
        line.tag = static_cast<Addr>(img.lines[i * 4]);
        line.valid = img.lines[i * 4 + 1] != 0;
        line.dirty = img.lines[i * 4 + 2] != 0;
        line.lastUse = img.lines[i * 4 + 3];
    }
    cache->stats_.accesses.value_ = img.accesses;
    cache->stats_.hits.value_ = img.hits;
    cache->stats_.misses.value_ = img.misses;
    cache->stats_.writebacks.value_ = img.writebacks;
}

// --------------------------------------------------------------------
// regfile
// --------------------------------------------------------------------

namespace
{

constexpr std::uint64_t familyNsf = 0;
constexpr std::uint64_t familySegmented = 1;
constexpr std::uint64_t familyWindowed = 2;

/** Validate one ReplacementState image against its target shape. */
bool
checkRepl(const ReplImage &img, std::size_t slot_count,
          std::uint64_t kind, const std::vector<bool> &expect_held,
          std::string *why)
{
    if (img.kind != kind)
        return failDecode(why, "regfile section: replacement kind "
                               "skew");
    if (img.held.size() != slot_count || !isBoolVec(img.held) ||
        img.next.size() != slot_count + 1 ||
        img.prev.size() != slot_count + 1 || img.rng.size() != 4) {
        return failDecode(why, "regfile section: misshapen "
                               "replacement state");
    }
    std::uint64_t held_count = 0;
    for (std::size_t i = 0; i < slot_count; ++i) {
        held_count += img.held[i];
        if ((img.held[i] != 0) != expect_held[i]) {
            return failDecode(
                why, "regfile section: replacement candidates "
                     "disagree with the occupancy they shadow");
        }
    }
    if (held_count != img.heldCount) {
        return failDecode(why, "regfile section: replacement held "
                               "count skew");
    }
    for (std::size_t i = 0; i <= slot_count; ++i) {
        if (img.next[i] > slot_count || img.prev[i] > slot_count) {
            return failDecode(why, "regfile section: replacement "
                                   "link out of range");
        }
    }
    if (kind == static_cast<std::uint64_t>(
                    cam::ReplacementKind::Random)) {
        if (img.heldSlots.size() != held_count)
            return failDecode(why, "regfile section: candidate "
                                   "array size skew");
        for (std::size_t i = 0; i < img.heldSlots.size(); ++i) {
            std::uint64_t slot = img.heldSlots[i];
            if (slot >= slot_count || img.held[slot] == 0 ||
                (i > 0 && img.heldSlots[i - 1] >= slot)) {
                return failDecode(why, "regfile section: bad "
                                       "candidate array");
            }
        }
        return true;
    }
    if (!img.heldSlots.empty()) {
        return failDecode(why, "regfile section: candidate array on "
                               "a list policy");
    }
    // Walk the recency list exactly as the live audit does.
    std::vector<bool> seen(slot_count, false);
    std::uint64_t steps = 0;
    std::size_t slot = static_cast<std::size_t>(img.next[slot_count]);
    std::size_t prev = slot_count;
    while (slot != slot_count) {
        if (steps++ >= held_count || img.held[slot] == 0 ||
            seen[slot] || img.prev[slot] != prev) {
            return failDecode(why, "regfile section: broken "
                                   "replacement recency list");
        }
        seen[slot] = true;
        prev = slot;
        slot = static_cast<std::size_t>(img.next[slot]);
    }
    if (img.prev[slot_count] != prev || steps != held_count) {
        return failDecode(why, "regfile section: replacement list "
                               "does not cover the held slots");
    }
    return true;
}

/** Validate a Ctable image: capacity, order, and exact cid set. */
bool
checkCtable(const CtableImage &img, std::size_t capacity,
            const std::vector<std::uint64_t> &expect_cids,
            std::string *why)
{
    if (img.capacity != capacity)
        return failDecode(why, "regfile section: ctable capacity "
                               "skew");
    if (img.mappings.size() % 2 != 0 ||
        img.mappings.size() / 2 != expect_cids.size()) {
        return failDecode(why, "regfile section: ctable is not in "
                               "bijection with the contexts");
    }
    for (std::size_t i = 0; i < img.mappings.size(); i += 2) {
        if (img.mappings[i] != expect_cids[i / 2] ||
            img.mappings[i] >= capacity ||
            img.mappings[i + 1] > u32Max) {
            return failDecode(why,
                              "regfile section: bad ctable entry");
        }
    }
    return true;
}

} // namespace

std::string
SnapshotAccess::saveRegfile(const regfile::RegisterFile &rf,
                            unsigned version)
{
    FieldWriter w;

    std::uint64_t family = familyNsf;
    if (dynamic_cast<const regfile::NamedStateRegisterFile *>(&rf))
        family = familyNsf;
    else if (dynamic_cast<const regfile::SegmentedRegisterFile *>(&rf))
        family = familySegmented;
    else if (dynamic_cast<const regfile::WindowedRegisterFile *>(&rf))
        family = familyWindowed;
    else
        nsrf_panic("unknown register file organization in snapshot");
    w.u64("family", family);

    w.u64("rf.current", rf.current_);
    w.u64("rf.clock", rf.clock_);
    const auto &s = rf.stats_;
    w.u64vec("rf.counters",
             {s.reads.value_, s.writes.value_, s.readMisses.value_,
              s.writeMisses.value_, s.contextSwitches.value_,
              s.switchMisses.value_, s.regsSpilled.value_,
              s.regsReloaded.value_, s.liveRegsSpilled.value_,
              s.liveRegsReloaded.value_, s.lineAllocs.value_,
              s.lineEvictions.value_});
    w.u64("rf.stall", s.stallCycles);
    auto putTwm = [&w](const char *started, const char *last,
                       const char *elapsed, const char *weighted,
                       const char *current, const char *max,
                       const stats::TimeWeightedMean &t) {
        w.u64(started, t.started_ ? 1 : 0);
        w.u64(last, t.last_);
        w.u64(elapsed, t.elapsed_);
        w.f64(weighted, t.weighted_);
        w.f64(current, t.current_);
        w.f64(max, t.max_);
    };
    putTwm("active.started", "active.last", "active.elapsed",
           "active.weighted", "active.current", "active.max",
           s.activeRegs);
    putTwm("resident.started", "resident.last", "resident.elapsed",
           "resident.weighted", "resident.current", "resident.max",
           s.residentContexts);

    auto putRepl = [&w](const cam::ReplacementState &repl) {
        w.u64("repl.kind", static_cast<std::uint64_t>(repl.kind_));
        w.u64("repl.heldCount", repl.heldCount_);
        w.u64vec("repl.held", fromBools(repl.held_));
        std::vector<std::uint64_t> links(repl.next_.begin(),
                                         repl.next_.end());
        w.u64vec("repl.next", links);
        links.assign(repl.prev_.begin(), repl.prev_.end());
        w.u64vec("repl.prev", links);
        links.assign(repl.heldSlots_.begin(), repl.heldSlots_.end());
        w.u64vec("repl.heldSlots", links);
        w.u64vec("repl.rng",
                 {repl.rng_.state_[0], repl.rng_.state_[1],
                  repl.rng_.state_[2], repl.rng_.state_[3]});
    };
    auto putCtable = [&w](const regfile::Ctable &ctable) {
        w.u64("ct.capacity", ctable.capacity());
        std::vector<std::uint64_t> mappings;
        mappings.reserve(ctable.mappedCount() * 2);
        ctable.forEachMapping([&](ContextId cid, Addr frame) {
            mappings.push_back(cid);
            mappings.push_back(frame);
        });
        w.u64vec("ct.mappings", mappings);
    };

    if (family == familyNsf) {
        const auto &nsf =
            static_cast<const regfile::NamedStateRegisterFile &>(rf);
        std::vector<std::uint64_t> array(nsf.array_.begin(),
                                         nsf.array_.end());
        w.u64vec("nsf.array", array);
        if (version >= 2) {
            std::vector<std::uint64_t> meta(nsf.meta_.begin(),
                                            nsf.meta_.end());
            w.u64vec("nsf.meta", meta);
        } else {
            // v1 compat writer (tests only): split the packed bytes
            // back into the original valid/dirty bit vectors.
            std::vector<std::uint64_t> valid, dirty;
            valid.reserve(nsf.meta_.size());
            dirty.reserve(nsf.meta_.size());
            for (std::uint8_t m : nsf.meta_) {
                valid.push_back(m & 1);
                dirty.push_back((m >> 1) & 1);
            }
            w.u64vec("nsf.valid", valid);
            w.u64vec("nsf.dirty", dirty);
        }

        std::vector<std::pair<
            ContextId,
            const regfile::NamedStateRegisterFile::ContextState *>>
            ctxs;
        ctxs.reserve(nsf.contexts_.size());
        for (const auto &[cid, ctx] : nsf.contexts_)
            ctxs.emplace_back(cid, &ctx);
        std::sort(ctxs.begin(), ctxs.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        w.u64("nsf.ctxCount", ctxs.size());
        for (const auto &[cid, ctx] : ctxs) {
            w.u64("ctx.cid", cid);
            w.u64vec("ctx.validInMem", fromBools(ctx->validInMem));
            w.u64("ctx.lines", ctx->residentLines);
            w.u64("ctx.regs", ctx->residentLiveRegs);
        }
        w.u64("nsf.activeCount", nsf.activeCount_);
        w.u64("nsf.residentCtxs", nsf.residentCtxCount_);
        w.u64("nsf.lastNotedActive", nsf.lastNotedActive_);
        w.u64("nsf.lastNotedResident", nsf.lastNotedResident_);
        w.u64("nsf.traceDirty", nsf.traceDirtyWords_);

        const auto &dec = nsf.decoder_;
        w.u64vec("dec.freeWords", dec.freeWords_);
        std::vector<std::uint64_t> tags;
        for (std::size_t line = 0; line < dec.lineCount_; ++line) {
            if (!dec.lineValid(line))
                continue;
            tags.push_back(line);
            tags.push_back(dec.tags_[line].cid);
            tags.push_back(dec.tags_[line].lineOffset);
        }
        w.u64vec("dec.tags", tags);
        std::vector<std::uint64_t> links(dec.chainNext_.begin(),
                                         dec.chainNext_.end());
        w.u64vec("dec.chainNext", links);
        links.assign(dec.chainPrev_.begin(), dec.chainPrev_.end());
        w.u64vec("dec.chainPrev", links);
        w.u64("dec.searches", dec.stats_.searches.value_);
        w.u64("dec.hits", dec.stats_.hits.value_);
        w.u64("dec.programs", dec.stats_.programs.value_);
        w.u64("dec.invalidates", dec.stats_.invalidates.value_);

        putRepl(nsf.repl_);
        putCtable(nsf.ctable_);
        return w.take();
    }

    // Segmented and windowed share the frame/window storage shape.
    auto putSlots = [&w](auto const &slots) {
        w.u64("slots.count", slots.size());
        for (const auto &slot : slots) {
            w.u64("slot.inUse", slot.inUse ? 1 : 0);
            w.u64("slot.cid", slot.cid);
            std::vector<std::uint64_t> regs(slot.regs.begin(),
                                            slot.regs.end());
            w.u64vec("slot.regs", regs);
        }
    };

    if (family == familySegmented) {
        const auto &seg =
            static_cast<const regfile::SegmentedRegisterFile &>(rf);
        putSlots(seg.frames_);
        std::vector<std::pair<
            ContextId,
            const regfile::SegmentedRegisterFile::ContextState *>>
            ctxs;
        for (const auto &[cid, ctx] : seg.contexts_)
            ctxs.emplace_back(cid, &ctx);
        std::sort(ctxs.begin(), ctxs.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        w.u64("sc.count", ctxs.size());
        for (const auto &[cid, ctx] : ctxs) {
            w.u64("sc.cid", cid);
            w.u64vec("sc.live", fromBools(ctx->live));
            w.u64("sc.liveCount", ctx->liveCount);
            w.u64vec("sc.validInMem", fromBools(ctx->validInMem));
            w.u64("sc.everSpilled", ctx->everSpilled ? 1 : 0);
        }
        w.u64("seg.activeCount", seg.activeCount_);
        putRepl(seg.repl_);
        putCtable(seg.ctable_);
        return w.take();
    }

    const auto &win =
        static_cast<const regfile::WindowedRegisterFile &>(rf);
    putSlots(win.windows_);
    std::vector<std::pair<
        ContextId, const regfile::WindowedRegisterFile::ContextState *>>
        ctxs;
    for (const auto &[cid, ctx] : win.contexts_)
        ctxs.emplace_back(cid, &ctx);
    std::sort(ctxs.begin(), ctxs.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    w.u64("sc.count", ctxs.size());
    for (const auto &[cid, ctx] : ctxs) {
        w.u64("sc.cid", cid);
        w.u64vec("sc.live", fromBools(ctx->live));
        w.u64("sc.liveCount", ctx->liveCount);
        w.u64("sc.everSpilled", ctx->everSpilled ? 1 : 0);
        w.u64("sc.order", ctx->order);
    }
    w.u64("win.nextOrder", win.nextOrder_);
    w.u64("win.overflows", win.overflows_);
    w.u64("win.underflows", win.underflows_);
    w.u64("win.activeCount", win.activeCount_);
    putCtable(win.ctable_);
    return w.take();
}

bool
SnapshotAccess::decodeRegfile(const std::string &payload,
                              unsigned version,
                              const regfile::RegisterFile &rf,
                              RegfileImage *img, std::string *why)
{
    FieldParser p(payload);
    RegfileImage out;
    p.u64("family", &out.family);

    std::uint64_t target_family = familyNsf;
    const auto *nsf =
        dynamic_cast<const regfile::NamedStateRegisterFile *>(&rf);
    const auto *seg =
        dynamic_cast<const regfile::SegmentedRegisterFile *>(&rf);
    const auto *win =
        dynamic_cast<const regfile::WindowedRegisterFile *>(&rf);
    if (nsf)
        target_family = familyNsf;
    else if (seg)
        target_family = familySegmented;
    else if (win)
        target_family = familyWindowed;
    else
        return failDecode(why, "regfile section: unknown target "
                               "organization");
    if (p.ok() && out.family != target_family) {
        return failDecode(
            why, "regfile section: organization disagrees with the "
                 "target register file");
    }

    p.u64("rf.current", &out.current);
    p.u64("rf.clock", &out.clock);
    p.u64vec("rf.counters", &out.counters);
    p.u64("rf.stall", &out.stallCycles);
    auto parseTwm = [&p](const char *started, const char *last,
                         const char *elapsed, const char *weighted,
                         const char *current, const char *max,
                         TwmImage *t) {
        p.u64(started, &t->started);
        p.u64(last, &t->last);
        p.u64(elapsed, &t->elapsed);
        p.f64(weighted, &t->weighted);
        p.f64(current, &t->current);
        p.f64(max, &t->max);
    };
    parseTwm("active.started", "active.last", "active.elapsed",
             "active.weighted", "active.current", "active.max",
             &out.activeRegs);
    parseTwm("resident.started", "resident.last", "resident.elapsed",
             "resident.weighted", "resident.current", "resident.max",
             &out.residentContexts);
    if (p.ok() &&
        (out.counters.size() != 12 || out.current > u32Max ||
         out.activeRegs.started > 1 ||
         out.residentContexts.started > 1)) {
        return failDecode(why, "regfile section: bad base state");
    }

    auto parseRepl = [&p](ReplImage *r) {
        p.u64("repl.kind", &r->kind);
        p.u64("repl.heldCount", &r->heldCount);
        p.u64vec("repl.held", &r->held);
        p.u64vec("repl.next", &r->next);
        p.u64vec("repl.prev", &r->prev);
        p.u64vec("repl.heldSlots", &r->heldSlots);
        p.u64vec("repl.rng", &r->rng);
    };
    auto parseCtable = [&p](CtableImage *c) {
        p.u64("ct.capacity", &c->capacity);
        p.u64vec("ct.mappings", &c->mappings);
    };

    if (target_family == familyNsf) {
        p.u64vec("nsf.array", &out.array);
        if (version >= 2) {
            p.u64vec("nsf.meta", &out.meta);
        } else {
            // v1 backward-compat path: the metadata arrived as two
            // separate bit vectors; fold them into the packed image
            // so validation and apply see one layout.
            std::vector<std::uint64_t> valid, dirty;
            p.u64vec("nsf.valid", &valid);
            p.u64vec("nsf.dirty", &dirty);
            if (p.ok()) {
                if (valid.size() != dirty.size() ||
                    !isBoolVec(valid) || !isBoolVec(dirty)) {
                    return failDecode(
                        why, "regfile section: misshapen v1 "
                             "valid/dirty vectors");
                }
                out.meta.reserve(valid.size());
                for (std::size_t s = 0; s < valid.size(); ++s)
                    out.meta.push_back(valid[s] | (dirty[s] << 1));
            }
        }
        std::uint64_t ctx_count = 0;
        p.u64("nsf.ctxCount", &ctx_count);
        if (p.ok() && ctx_count > (1u << 24))
            return failDecode(why,
                              "regfile section: absurd context count");
        for (std::uint64_t i = 0; p.ok() && i < ctx_count; ++i) {
            RegfileImage::NsfCtx ctx;
            p.u64("ctx.cid", &ctx.cid);
            p.u64vec("ctx.validInMem", &ctx.validInMem);
            p.u64("ctx.lines", &ctx.residentLines);
            p.u64("ctx.regs", &ctx.residentLiveRegs);
            out.nsfCtxs.push_back(std::move(ctx));
        }
        p.u64("nsf.activeCount", &out.activeCount);
        p.u64("nsf.residentCtxs", &out.residentCtxCount);
        p.u64("nsf.lastNotedActive", &out.lastNotedActive);
        p.u64("nsf.lastNotedResident", &out.lastNotedResident);
        p.u64("nsf.traceDirty", &out.traceDirtyWords);
        p.u64vec("dec.freeWords", &out.decoder.freeWords);
        p.u64vec("dec.tags", &out.decoder.tags);
        p.u64vec("dec.chainNext", &out.decoder.chainNext);
        p.u64vec("dec.chainPrev", &out.decoder.chainPrev);
        p.u64("dec.searches", &out.decoder.searches);
        p.u64("dec.hits", &out.decoder.hits);
        p.u64("dec.programs", &out.decoder.programs);
        p.u64("dec.invalidates", &out.decoder.invalidates);
        parseRepl(&out.repl);
        parseCtable(&out.ctable);
        if (!finishParse(p, "regfile", why))
            return false;

        const auto &cfg = nsf->config();
        const std::size_t lines = nsf->decoder().size();
        const std::size_t slots = lines * cfg.regsPerLine;
        constexpr std::uint64_t nil = 0xffffffffull;

        if (out.array.size() != slots || out.meta.size() != slots) {
            return failDecode(why,
                              "regfile section: misshapen nsf array");
        }
        for (std::size_t s = 0; s < slots; ++s) {
            // Metadata bytes carry only the valid (bit 0) and dirty
            // (bit 1) flags, and dirty implies valid.
            if (out.array[s] > u32Max || out.meta[s] > 3 ||
                out.meta[s] == 2) {
                return failDecode(why,
                                  "regfile section: bad nsf slot");
            }
        }

        std::vector<std::uint64_t> ctx_cids;
        for (std::size_t i = 0; i < out.nsfCtxs.size(); ++i) {
            const auto &ctx = out.nsfCtxs[i];
            if (ctx.cid > u32Max ||
                (i > 0 && out.nsfCtxs[i - 1].cid >= ctx.cid) ||
                ctx.validInMem.size() != cfg.maxRegsPerContext ||
                !isBoolVec(ctx.validInMem)) {
                return failDecode(why,
                                  "regfile section: bad nsf context");
            }
            ctx_cids.push_back(ctx.cid);
        }

        // Decoder: free bitmap shape, tag table, chain structure.
        const auto &dec = out.decoder;
        if (dec.freeWords.size() != (lines + 63) / 64 ||
            dec.chainNext.size() != lines ||
            dec.chainPrev.size() != lines ||
            dec.tags.size() % 3 != 0) {
            return failDecode(why,
                              "regfile section: misshapen decoder");
        }
        std::uint64_t free_lines = 0;
        for (std::size_t wd = 0; wd < dec.freeWords.size(); ++wd) {
            for (unsigned bit = 0; bit < 64; ++bit) {
                bool free = (dec.freeWords[wd] >> bit) & 1;
                std::size_t line = wd * 64 + bit;
                if (line >= lines) {
                    if (free) {
                        return failDecode(
                            why, "regfile section: free bit past the "
                                 "last line");
                    }
                    continue;
                }
                free_lines += free ? 1 : 0;
            }
        }
        const std::uint64_t tag_count = dec.tags.size() / 3;
        if (tag_count != lines - free_lines) {
            return failDecode(why, "regfile section: tag count "
                                   "disagrees with the free bitmap");
        }
        std::vector<std::uint64_t> line_cid(lines, nil);
        std::vector<std::uint64_t> line_off(lines, 0);
        std::unordered_set<std::uint64_t> tag_keys;
        for (std::size_t i = 0; i < dec.tags.size(); i += 3) {
            std::uint64_t line = dec.tags[i];
            std::uint64_t cid = dec.tags[i + 1];
            std::uint64_t off = dec.tags[i + 2];
            bool line_free =
                line < lines &&
                ((dec.freeWords[line / 64] >> (line % 64)) & 1);
            if (line >= lines || line_free ||
                (i > 0 && dec.tags[i - 3] >= line) || cid > u32Max ||
                off >= cfg.maxRegsPerContext ||
                off % cfg.regsPerLine != 0 ||
                !std::binary_search(ctx_cids.begin(), ctx_cids.end(),
                                    cid) ||
                !tag_keys.insert((cid << 32) | off).second) {
                return failDecode(why,
                                  "regfile section: bad decoder tag");
            }
            line_cid[line] = cid;
            line_off[line] = off;
        }
        for (std::size_t line = 0; line < lines; ++line) {
            bool tagged = line_cid[line] != nil;
            std::uint64_t next = dec.chainNext[line];
            std::uint64_t prev = dec.chainPrev[line];
            if ((next != nil && next >= lines) ||
                (prev != nil && prev >= lines) ||
                (!tagged && (next != nil || prev != nil))) {
                return failDecode(why, "regfile section: bad decoder "
                                       "chain link");
            }
        }
        std::vector<bool> chained(lines, false);
        std::unordered_set<std::uint64_t> head_cids;
        std::uint64_t chained_count = 0;
        for (std::size_t head = 0; head < lines; ++head) {
            if (line_cid[head] == nil || dec.chainPrev[head] != nil)
                continue;
            if (!head_cids.insert(line_cid[head]).second) {
                return failDecode(why, "regfile section: context has "
                                       "two chain heads");
            }
            std::uint64_t prev = nil;
            std::uint64_t line = head;
            while (line != nil) {
                if (chained[line] ||
                    line_cid[line] != line_cid[head] ||
                    dec.chainPrev[line] != prev) {
                    return failDecode(
                        why, "regfile section: broken context chain");
                }
                chained[line] = true;
                ++chained_count;
                prev = line;
                line = dec.chainNext[line];
            }
        }
        if (chained_count != tag_count) {
            return failDecode(why, "regfile section: chains do not "
                                   "cover the valid lines");
        }

        // Recount occupancy from the raw data and insist the cached
        // counters agree — a disagreement would corrupt Figure 9
        // statistics silently.
        std::uint64_t active = 0;
        std::unordered_set<std::uint64_t> resident_cids;
        std::vector<std::uint64_t> ctx_lines(out.nsfCtxs.size(), 0);
        std::vector<std::uint64_t> ctx_regs(out.nsfCtxs.size(), 0);
        auto ctx_index = [&](std::uint64_t cid) {
            return static_cast<std::size_t>(
                std::lower_bound(ctx_cids.begin(), ctx_cids.end(),
                                 cid) -
                ctx_cids.begin());
        };
        for (std::size_t line = 0; line < lines; ++line) {
            if (line_cid[line] == nil)
                continue;
            ++ctx_lines[ctx_index(line_cid[line])];
            resident_cids.insert(line_cid[line]);
        }
        for (std::size_t s = 0; s < slots; ++s) {
            std::size_t line = s / cfg.regsPerLine;
            if ((out.meta[s] & 1) == 0)
                continue;
            if (line_cid[line] == nil) {
                return failDecode(why, "regfile section: valid "
                                       "register on a free line");
            }
            ++active;
            ++ctx_regs[ctx_index(line_cid[line])];
        }
        if (active != out.activeCount ||
            resident_cids.size() != out.residentCtxCount) {
            return failDecode(why, "regfile section: occupancy "
                                   "counters disagree with recount");
        }
        for (std::size_t i = 0; i < out.nsfCtxs.size(); ++i) {
            if (out.nsfCtxs[i].residentLines != ctx_lines[i] ||
                out.nsfCtxs[i].residentLiveRegs != ctx_regs[i]) {
                return failDecode(why, "regfile section: per-context "
                                       "occupancy disagrees");
            }
        }

        std::vector<bool> expect_held(lines);
        for (std::size_t line = 0; line < lines; ++line)
            expect_held[line] = line_cid[line] != nil;
        if (!checkRepl(out.repl, lines,
                       static_cast<std::uint64_t>(
                           cfg.replacement),
                       expect_held, why)) {
            return false;
        }
        if (!checkCtable(out.ctable, nsf->ctable().capacity(),
                         ctx_cids, why)) {
            return false;
        }
        *img = std::move(out);
        return true;
    }

    // Segmented and windowed: shared storage block.
    std::uint64_t slot_count_field = 0;
    p.u64("slots.count", &slot_count_field);
    if (p.ok() && slot_count_field > (1u << 20))
        return failDecode(why, "regfile section: absurd slot count");
    for (std::uint64_t i = 0; p.ok() && i < slot_count_field; ++i) {
        RegfileImage::FrameImg frame;
        p.u64("slot.inUse", &frame.inUse);
        p.u64("slot.cid", &frame.cid);
        p.u64vec("slot.regs", &frame.regs);
        out.frames.push_back(std::move(frame));
    }
    std::uint64_t ctx_count = 0;
    p.u64("sc.count", &ctx_count);
    if (p.ok() && ctx_count > (1u << 24))
        return failDecode(why, "regfile section: absurd context count");
    for (std::uint64_t i = 0; p.ok() && i < ctx_count; ++i) {
        RegfileImage::SlotCtx ctx;
        p.u64("sc.cid", &ctx.cid);
        p.u64vec("sc.live", &ctx.live);
        p.u64("sc.liveCount", &ctx.liveCount);
        if (target_family == familySegmented) {
            p.u64vec("sc.validInMem", &ctx.validInMem);
            p.u64("sc.everSpilled", &ctx.everSpilled);
        } else {
            p.u64("sc.everSpilled", &ctx.everSpilled);
            p.u64("sc.order", &ctx.order);
        }
        out.slotCtxs.push_back(std::move(ctx));
    }
    if (target_family == familySegmented) {
        p.u64("seg.activeCount", &out.slotActiveCount);
        parseRepl(&out.repl);
    } else {
        p.u64("win.nextOrder", &out.nextOrder);
        p.u64("win.overflows", &out.overflows);
        p.u64("win.underflows", &out.underflows);
        p.u64("win.activeCount", &out.slotActiveCount);
    }
    parseCtable(&out.ctable);
    if (!finishParse(p, "regfile", why))
        return false;

    const std::size_t slot_count =
        seg ? seg->config().frames : win->config().windows;
    const std::size_t regs_per_slot =
        seg ? seg->config().regsPerFrame : win->config().regsPerWindow;
    if (out.frames.size() != slot_count) {
        return failDecode(why,
                          "regfile section: frame/window count skew");
    }

    std::vector<std::uint64_t> ctx_cids;
    std::unordered_set<std::uint64_t> orders;
    for (std::size_t i = 0; i < out.slotCtxs.size(); ++i) {
        const auto &ctx = out.slotCtxs[i];
        std::uint64_t live = 0;
        for (std::uint64_t b : ctx.live)
            live += b;
        if (ctx.cid > u32Max ||
            (i > 0 && out.slotCtxs[i - 1].cid >= ctx.cid) ||
            ctx.live.size() != regs_per_slot ||
            !isBoolVec(ctx.live) || live != ctx.liveCount ||
            ctx.everSpilled > 1) {
            return failDecode(why, "regfile section: bad context");
        }
        if (target_family == familySegmented) {
            if (ctx.validInMem.size() != regs_per_slot ||
                !isBoolVec(ctx.validInMem)) {
                return failDecode(
                    why, "regfile section: bad live-in-memory map");
            }
        } else {
            if (ctx.order >= out.nextOrder ||
                !orders.insert(ctx.order).second) {
                return failDecode(
                    why, "regfile section: bad activation order");
            }
        }
        ctx_cids.push_back(ctx.cid);
    }

    std::uint64_t resident_live = 0;
    std::unordered_set<std::uint64_t> resident_cids;
    std::vector<bool> expect_held(slot_count);
    for (std::size_t f = 0; f < slot_count; ++f) {
        const auto &frame = out.frames[f];
        if (frame.inUse > 1 ||
            frame.regs.size() != regs_per_slot) {
            return failDecode(why,
                              "regfile section: bad frame/window");
        }
        for (std::uint64_t reg : frame.regs) {
            if (reg > u32Max) {
                return failDecode(
                    why, "regfile section: register out of range");
            }
        }
        expect_held[f] = frame.inUse != 0;
        if (frame.inUse) {
            auto it = std::lower_bound(ctx_cids.begin(),
                                       ctx_cids.end(), frame.cid);
            if (it == ctx_cids.end() || *it != frame.cid ||
                !resident_cids.insert(frame.cid).second) {
                return failDecode(
                    why, "regfile section: occupied frame has no "
                         "context or a duplicate owner");
            }
            resident_live +=
                out.slotCtxs[static_cast<std::size_t>(
                                 it - ctx_cids.begin())]
                    .liveCount;
        } else if (frame.cid != invalidContext) {
            return failDecode(
                why, "regfile section: free frame names a context");
        }
    }
    if (resident_live != out.slotActiveCount) {
        return failDecode(why, "regfile section: active register "
                               "count disagrees with recount");
    }

    const regfile::Ctable &ctable =
        seg ? seg->ctable_ : win->ctable_;
    if (target_family == familySegmented &&
        !checkRepl(out.repl, slot_count,
                   static_cast<std::uint64_t>(
                       seg->config().replacement),
                   expect_held, why)) {
        return false;
    }
    if (!checkCtable(out.ctable, ctable.capacity(), ctx_cids, why))
        return false;
    *img = std::move(out);
    return true;
}

void
SnapshotAccess::applyRegfile(const RegfileImage &img,
                             regfile::RegisterFile &rf)
{
    rf.current_ = static_cast<ContextId>(img.current);
    rf.clock_ = img.clock;
    auto &s = rf.stats_;
    stats::Counter *counters[12] = {
        &s.reads,           &s.writes,       &s.readMisses,
        &s.writeMisses,     &s.contextSwitches, &s.switchMisses,
        &s.regsSpilled,     &s.regsReloaded, &s.liveRegsSpilled,
        &s.liveRegsReloaded, &s.lineAllocs,  &s.lineEvictions};
    for (std::size_t i = 0; i < 12; ++i)
        counters[i]->value_ = img.counters[i];
    s.stallCycles = img.stallCycles;
    auto applyTwm = [](const TwmImage &t, stats::TimeWeightedMean &m) {
        m.started_ = t.started != 0;
        m.last_ = t.last;
        m.elapsed_ = t.elapsed;
        m.weighted_ = t.weighted;
        m.current_ = t.current;
        m.max_ = t.max;
    };
    applyTwm(img.activeRegs, s.activeRegs);
    applyTwm(img.residentContexts, s.residentContexts);

    auto applyRepl = [](const ReplImage &r,
                        cam::ReplacementState &repl) {
        repl.held_ = toBools(r.held);
        repl.heldCount_ = static_cast<std::size_t>(r.heldCount);
        repl.next_.assign(r.next.begin(), r.next.end());
        repl.prev_.assign(r.prev.begin(), r.prev.end());
        repl.heldSlots_.assign(r.heldSlots.begin(),
                               r.heldSlots.end());
        for (std::size_t i = 0; i < 4; ++i)
            repl.rng_.state_[i] = r.rng[i];
    };
    auto applyCtable = [](const CtableImage &c,
                          regfile::Ctable &ctable) {
        ctable = regfile::Ctable(
            static_cast<std::size_t>(c.capacity));
        for (std::size_t i = 0; i < c.mappings.size(); i += 2) {
            ctable.set(static_cast<ContextId>(c.mappings[i]),
                       static_cast<Addr>(c.mappings[i + 1]));
        }
    };

    if (img.family == familyNsf) {
        auto &nsf = static_cast<regfile::NamedStateRegisterFile &>(rf);
        nsf.array_.assign(img.array.begin(), img.array.end());
        nsf.meta_.resize(img.meta.size());
        for (std::size_t s = 0; s < img.meta.size(); ++s)
            nsf.meta_[s] = static_cast<std::uint8_t>(img.meta[s]);
        nsf.contexts_.clear();
        for (const auto &ctx : img.nsfCtxs) {
            regfile::NamedStateRegisterFile::ContextState state;
            state.validInMem = toBools(ctx.validInMem);
            state.residentLines =
                static_cast<unsigned>(ctx.residentLines);
            state.residentLiveRegs =
                static_cast<unsigned>(ctx.residentLiveRegs);
            nsf.contexts_.emplace(static_cast<ContextId>(ctx.cid),
                                  std::move(state));
        }
        nsf.activeCount_ =
            static_cast<std::size_t>(img.activeCount);
        nsf.residentCtxCount_ =
            static_cast<std::size_t>(img.residentCtxCount);
        nsf.lastNotedActive_ =
            static_cast<std::size_t>(img.lastNotedActive);
        nsf.lastNotedResident_ =
            static_cast<std::size_t>(img.lastNotedResident);
        nsf.traceDirtyWords_ =
            static_cast<std::size_t>(img.traceDirtyWords);

        auto &dec = nsf.decoder_;
        constexpr std::uint32_t nil = 0xffffffffu;
        dec.freeWords_ = img.decoder.freeWords;
        // The summary bit for a word is "this word has a free line";
        // rebuilding it from the words reproduces the ctor semantics.
        dec.freeSummary_.assign((dec.freeWords_.size() + 63) / 64, 0);
        for (std::size_t wd = 0; wd < dec.freeWords_.size(); ++wd) {
            if (dec.freeWords_[wd] != 0) {
                dec.freeSummary_[wd / 64] |= std::uint64_t{1}
                                             << (wd % 64);
            }
        }
        std::fill(dec.tags_.begin(), dec.tags_.end(), cam::Tag{});
        dec.index_ = cam::FlatIndex(dec.lineCount_);
        dec.cidHeads_ = cam::FlatIndex(dec.lineCount_);
        for (std::size_t i = 0; i < img.decoder.tags.size(); i += 3) {
            std::size_t line =
                static_cast<std::size_t>(img.decoder.tags[i]);
            ContextId cid =
                static_cast<ContextId>(img.decoder.tags[i + 1]);
            RegIndex off =
                static_cast<RegIndex>(img.decoder.tags[i + 2]);
            dec.tags_[line] = cam::Tag{cid, off};
            dec.index_.insert(
                (static_cast<std::uint64_t>(cid) << 32) | off, line);
        }
        dec.chainNext_.assign(img.decoder.chainNext.size(), nil);
        dec.chainPrev_.assign(img.decoder.chainPrev.size(), nil);
        for (std::size_t i = 0; i < img.decoder.chainNext.size();
             ++i) {
            dec.chainNext_[i] = static_cast<std::uint32_t>(
                img.decoder.chainNext[i]);
            dec.chainPrev_[i] = static_cast<std::uint32_t>(
                img.decoder.chainPrev[i]);
        }
        for (std::size_t line = 0; line < dec.lineCount_; ++line) {
            if (dec.lineValid(line) && dec.chainPrev_[line] == nil)
                dec.cidHeads_.insert(dec.tags_[line].cid, line);
        }
        dec.stats_.searches.value_ = img.decoder.searches;
        dec.stats_.hits.value_ = img.decoder.hits;
        dec.stats_.programs.value_ = img.decoder.programs;
        dec.stats_.invalidates.value_ = img.decoder.invalidates;

        applyRepl(img.repl, nsf.repl_);
        applyCtable(img.ctable, nsf.ctable_);
        return;
    }

    if (img.family == familySegmented) {
        auto &seg = static_cast<regfile::SegmentedRegisterFile &>(rf);
        seg.residentFrame_.clear();
        for (std::size_t f = 0; f < img.frames.size(); ++f) {
            auto &frame = seg.frames_[f];
            frame.inUse = img.frames[f].inUse != 0;
            frame.cid = static_cast<ContextId>(img.frames[f].cid);
            frame.regs.assign(img.frames[f].regs.begin(),
                              img.frames[f].regs.end());
            if (frame.inUse)
                seg.residentFrame_[frame.cid] = f;
        }
        seg.contexts_.clear();
        for (const auto &ctx : img.slotCtxs) {
            regfile::SegmentedRegisterFile::ContextState state;
            state.live = toBools(ctx.live);
            state.liveCount = static_cast<unsigned>(ctx.liveCount);
            state.validInMem = toBools(ctx.validInMem);
            state.everSpilled = ctx.everSpilled != 0;
            seg.contexts_.emplace(static_cast<ContextId>(ctx.cid),
                                  std::move(state));
        }
        seg.activeCount_ =
            static_cast<std::size_t>(img.slotActiveCount);
        applyRepl(img.repl, seg.repl_);
        applyCtable(img.ctable, seg.ctable_);
        return;
    }

    auto &win = static_cast<regfile::WindowedRegisterFile &>(rf);
    win.residentWindow_.clear();
    for (std::size_t f = 0; f < img.frames.size(); ++f) {
        auto &window = win.windows_[f];
        window.inUse = img.frames[f].inUse != 0;
        window.cid = static_cast<ContextId>(img.frames[f].cid);
        window.regs.assign(img.frames[f].regs.begin(),
                           img.frames[f].regs.end());
        if (window.inUse)
            win.residentWindow_[window.cid] = f;
    }
    win.contexts_.clear();
    for (const auto &ctx : img.slotCtxs) {
        regfile::WindowedRegisterFile::ContextState state;
        state.live = toBools(ctx.live);
        state.liveCount = static_cast<unsigned>(ctx.liveCount);
        state.everSpilled = ctx.everSpilled != 0;
        state.order = ctx.order;
        win.contexts_.emplace(static_cast<ContextId>(ctx.cid),
                              std::move(state));
    }
    win.nextOrder_ = img.nextOrder;
    win.overflows_ = img.overflows;
    win.underflows_ = img.underflows;
    win.activeCount_ =
        static_cast<std::size_t>(img.slotActiveCount);
    applyCtable(img.ctable, win.ctable_);
}

} // namespace nsrf::snapshot
