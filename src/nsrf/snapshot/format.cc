#include "nsrf/snapshot/format.hh"

#include <bit>
#include <cstdio>

#include "nsrf/common/logging.hh"

namespace nsrf::snapshot
{

std::uint64_t
fnv1a(const void *data, std::size_t size)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

namespace
{

void
appendU64(std::string &out, std::uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
    out += buf;
}

void
appendHex64(std::string &out, std::uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(value));
    out += buf;
}

/** Strict decimal u64: nonempty, digits only, no overflow (the
 * serve codec's parseU64Field discipline). */
bool
parseU64Token(const std::string &text, std::uint64_t *out)
{
    if (text.empty() || text.size() > 20)
        return false;
    std::uint64_t acc = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            return false;
        std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
        if (acc > (~std::uint64_t{0} - digit) / 10)
            return false;
        acc = acc * 10 + digit;
    }
    *out = acc;
    return true;
}

/** Exactly 16 lowercase hex digits -> the double's bit pattern. */
bool
parseF64Token(const std::string &text, double *out)
{
    if (text.size() != 16)
        return false;
    std::uint64_t bits = 0;
    for (char c : text) {
        std::uint64_t nibble;
        if (c >= '0' && c <= '9')
            nibble = static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            nibble = static_cast<std::uint64_t>(c - 'a') + 10;
        else
            return false;
        bits = (bits << 4) | nibble;
    }
    *out = std::bit_cast<double>(bits);
    return true;
}

} // namespace

void
FieldWriter::u64(const char *key, std::uint64_t value)
{
    out_ += key;
    out_ += ' ';
    appendU64(out_, value);
    out_ += '\n';
}

void
FieldWriter::f64(const char *key, double value)
{
    out_ += key;
    out_ += ' ';
    appendHex64(out_, std::bit_cast<std::uint64_t>(value));
    out_ += '\n';
}

void
FieldWriter::u64vec(const char *key,
                    const std::vector<std::uint64_t> &values)
{
    out_ += key;
    out_ += ' ';
    appendU64(out_, values.size());
    for (std::uint64_t v : values) {
        out_ += ' ';
        appendU64(out_, v);
    }
    out_ += '\n';
}

FieldParser::FieldParser(const std::string &payload)
    : payload_(payload)
{
}

bool
FieldParser::fail(const std::string &why)
{
    if (why_.empty())
        why_ = why;
    return false;
}

bool
FieldParser::nextLine(const char *key,
                      std::vector<std::string> *fields)
{
    if (!why_.empty())
        return false;
    if (pos_ >= payload_.size())
        return fail(std::string("missing field '") + key + "'");
    std::size_t end = payload_.find('\n', pos_);
    if (end == std::string::npos)
        return fail("unterminated line");
    std::string line = payload_.substr(pos_, end - pos_);
    pos_ = end + 1;

    fields->clear();
    std::size_t start = 0;
    while (start <= line.size()) {
        std::size_t space = line.find(' ', start);
        if (space == std::string::npos) {
            fields->push_back(line.substr(start));
            break;
        }
        fields->push_back(line.substr(start, space - start));
        start = space + 1;
    }
    if (fields->empty() || (*fields)[0] != key) {
        return fail(std::string("expected field '") + key +
                    "', got '" +
                    (fields->empty() ? "" : (*fields)[0]) + "'");
    }
    return true;
}

bool
FieldParser::u64(const char *key, std::uint64_t *value)
{
    std::vector<std::string> fields;
    if (!nextLine(key, &fields))
        return false;
    if (fields.size() != 2 || !parseU64Token(fields[1], value))
        return fail(std::string("bad u64 field '") + key + "'");
    return true;
}

bool
FieldParser::f64(const char *key, double *value)
{
    std::vector<std::string> fields;
    if (!nextLine(key, &fields))
        return false;
    if (fields.size() != 2 || !parseF64Token(fields[1], value))
        return fail(std::string("bad f64 field '") + key + "'");
    return true;
}

bool
FieldParser::u64vec(const char *key,
                    std::vector<std::uint64_t> *values)
{
    std::vector<std::string> fields;
    if (!nextLine(key, &fields))
        return false;
    std::uint64_t count = 0;
    if (fields.size() < 2 || !parseU64Token(fields[1], &count))
        return fail(std::string("bad vector count in '") + key +
                    "'");
    if (fields.size() != count + 2)
        return fail(std::string("vector '") + key +
                    "' length disagrees with its count");
    values->clear();
    values->reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t v;
        if (!parseU64Token(fields[static_cast<std::size_t>(i) + 2],
                           &v)) {
            return fail(std::string("bad vector element in '") +
                        key + "'");
        }
        values->push_back(v);
    }
    return true;
}

bool
FieldParser::atEnd()
{
    if (!why_.empty())
        return false;
    if (pos_ != payload_.size())
        return fail("trailing bytes after the last field");
    return true;
}

void
SnapshotBuilder::addSection(const std::string &name,
                            std::string payload)
{
    nsrf_assert(name.find(' ') == std::string::npos &&
                    name.find('\n') == std::string::npos &&
                    !name.empty(),
                "bad snapshot section name");
    for (const auto &[existing, ignored] : sections_) {
        (void)ignored;
        nsrf_assert(existing != name,
                    "duplicate snapshot section '%s'", name.c_str());
    }
    sections_.emplace_back(name, std::move(payload));
}

std::string
SnapshotBuilder::finish(const serve::Fingerprint &identity,
                        unsigned version) const
{
    nsrf_assert(version >= kSnapshotVersionMin &&
                    version <= kSnapshotVersion,
                "snapshot version %u outside [%u, %u]", version,
                kSnapshotVersionMin, kSnapshotVersion);
    std::string body;
    for (const auto &[name, payload] : sections_) {
        (void)name;
        body += payload;
    }

    std::string out;
    out += "nsrfsnap ";
    appendU64(out, version);
    out += ' ';
    appendU64(out, serve::kSchemaVersion);
    out += '\n';
    out += "fingerprint " + identity.hex() + '\n';
    out += "sections ";
    appendU64(out, sections_.size());
    out += '\n';
    std::size_t offset = 0;
    for (const auto &[name, payload] : sections_) {
        out += "section " + name + ' ';
        appendU64(out, offset);
        out += ' ';
        appendU64(out, payload.size());
        out += ' ';
        appendHex64(out, fnv1a(payload.data(), payload.size()));
        out += '\n';
        offset += payload.size();
    }
    out += "body ";
    appendU64(out, body.size());
    out += ' ';
    appendHex64(out, fnv1a(body.data(), body.size()));
    out += '\n';
    out += body;
    return out;
}

const std::string *
SnapshotView::find(const std::string &name) const
{
    for (const auto &[sectionName, payload] : sections) {
        if (sectionName == name)
            return &payload;
    }
    return nullptr;
}

namespace
{

/** Split one header line off @p bytes at @p pos into fields. */
bool
headerLine(const std::string &bytes, std::size_t *pos,
           std::vector<std::string> *fields)
{
    if (*pos >= bytes.size())
        return false;
    std::size_t end = bytes.find('\n', *pos);
    if (end == std::string::npos)
        return false;
    std::string line = bytes.substr(*pos, end - *pos);
    *pos = end + 1;
    fields->clear();
    std::size_t start = 0;
    while (start <= line.size()) {
        std::size_t space = line.find(' ', start);
        if (space == std::string::npos) {
            fields->push_back(line.substr(start));
            break;
        }
        fields->push_back(line.substr(start, space - start));
        start = space + 1;
    }
    return true;
}

bool
parseHex64Token(const std::string &text, std::uint64_t *out)
{
    if (text.size() != 16)
        return false;
    std::uint64_t acc = 0;
    for (char c : text) {
        std::uint64_t nibble;
        if (c >= '0' && c <= '9')
            nibble = static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            nibble = static_cast<std::uint64_t>(c - 'a') + 10;
        else
            return false;
        acc = (acc << 4) | nibble;
    }
    *out = acc;
    return true;
}

bool
failParse(std::string *why, const std::string &msg)
{
    if (why)
        *why = msg;
    return false;
}

} // namespace

bool
parseSnapshot(const std::string &bytes, SnapshotView *out,
              std::string *why)
{
    std::size_t pos = 0;
    std::vector<std::string> fields;

    if (!headerLine(bytes, &pos, &fields) || fields.size() != 3 ||
        fields[0] != "nsrfsnap") {
        return failParse(why, "not a snapshot file");
    }
    std::uint64_t version = 0, schema = 0;
    if (!parseU64Token(fields[1], &version) ||
        !parseU64Token(fields[2], &schema)) {
        return failParse(why, "malformed version line");
    }
    if (version < kSnapshotVersionMin || version > kSnapshotVersion)
        return failParse(why, "snapshot version skew");
    if (schema != serve::kSchemaVersion)
        return failParse(why, "schema version skew");

    if (!headerLine(bytes, &pos, &fields) || fields.size() != 2 ||
        fields[0] != "fingerprint") {
        return failParse(why, "missing fingerprint line");
    }
    serve::Fingerprint fingerprint;
    if (!serve::Fingerprint::fromHex(fields[1], &fingerprint))
        return failParse(why, "malformed fingerprint");

    if (!headerLine(bytes, &pos, &fields) || fields.size() != 2 ||
        fields[0] != "sections") {
        return failParse(why, "missing sections line");
    }
    std::uint64_t section_count = 0;
    if (!parseU64Token(fields[1], &section_count) ||
        section_count > 256) {
        return failParse(why, "bad section count");
    }

    struct SectionDesc
    {
        std::string name;
        std::uint64_t offset;
        std::uint64_t length;
        std::uint64_t digest;
    };
    std::vector<SectionDesc> descs;
    descs.reserve(static_cast<std::size_t>(section_count));
    std::uint64_t expect_offset = 0;
    for (std::uint64_t i = 0; i < section_count; ++i) {
        if (!headerLine(bytes, &pos, &fields) ||
            fields.size() != 5 || fields[0] != "section") {
            return failParse(why, "malformed section line");
        }
        SectionDesc d;
        d.name = fields[1];
        if (d.name.empty() || !parseU64Token(fields[2], &d.offset) ||
            !parseU64Token(fields[3], &d.length) ||
            !parseHex64Token(fields[4], &d.digest)) {
            return failParse(why, "malformed section descriptor");
        }
        // Sections must tile the body exactly, in order: offsets
        // that skip or overlap would let a corrupted table smuggle
        // undigested bytes past the per-section checks.
        if (d.offset != expect_offset)
            return failParse(why, "section offsets do not tile");
        expect_offset = d.offset + d.length;
        for (const auto &prev : descs) {
            if (prev.name == d.name)
                return failParse(why, "duplicate section name");
        }
        descs.push_back(std::move(d));
    }

    if (!headerLine(bytes, &pos, &fields) || fields.size() != 3 ||
        fields[0] != "body") {
        return failParse(why, "missing body line");
    }
    std::uint64_t body_len = 0, body_digest = 0;
    if (!parseU64Token(fields[1], &body_len) ||
        !parseHex64Token(fields[2], &body_digest)) {
        return failParse(why, "malformed body line");
    }
    if (body_len != expect_offset)
        return failParse(why,
                         "body length disagrees with the sections");
    if (bytes.size() - pos != body_len)
        return failParse(why, "truncated or oversized body");
    if (fnv1a(bytes.data() + pos, static_cast<std::size_t>(body_len)) !=
        body_digest) {
        return failParse(why, "body digest mismatch");
    }

    SnapshotView view;
    view.version = static_cast<unsigned>(version);
    view.fingerprint = fingerprint;
    for (const auto &d : descs) {
        std::string payload = bytes.substr(
            pos + static_cast<std::size_t>(d.offset),
            static_cast<std::size_t>(d.length));
        if (fnv1a(payload.data(), payload.size()) != d.digest) {
            return failParse(why, "section '" + d.name +
                                      "' digest mismatch");
        }
        view.sections.emplace_back(d.name, std::move(payload));
    }
    *out = std::move(view);
    return true;
}

} // namespace nsrf::snapshot
