#include "nsrf/sim/tracefile.hh"

#include <array>
#include <cstring>

#include "nsrf/common/logging.hh"

namespace nsrf::sim
{

namespace
{

constexpr char magic[8] = {'N', 'S', 'R', 'F',
                           'T', 'R', 'C', '1'};
constexpr std::size_t headerBytes = 16;
constexpr std::size_t recordBytes = 16;

std::array<unsigned char, recordBytes>
pack(const TraceEvent &ev)
{
    std::array<unsigned char, recordBytes> rec{};
    rec[0] = static_cast<unsigned char>(ev.kind);
    rec[1] = ev.srcCount;
    rec[2] = static_cast<unsigned char>((ev.hasDst ? 1 : 0) |
                                        (ev.memRef ? 2 : 0));
    rec[3] = static_cast<unsigned char>(ev.src[0]);
    rec[4] = static_cast<unsigned char>(ev.src[1]);
    rec[5] = static_cast<unsigned char>(ev.dst);
    std::uint64_t ctx = ev.ctx;
    std::memcpy(rec.data() + 8, &ctx, 8);
    return rec;
}

/**
 * Reject a record whose fixed-width fields cannot have been written
 * by pack(): the simulator indexes arrays with them, so replaying a
 * corrupt record would corrupt the run rather than fail it.
 */
void
validateRecord(const std::array<unsigned char, recordBytes> &rec,
               const std::string &path, std::uint64_t index)
{
    if (rec[0] > static_cast<unsigned char>(EventKind::End)) {
        nsrf_fatal("'%s' event %llu has invalid kind %u",
                   path.c_str(),
                   static_cast<unsigned long long>(index), rec[0]);
    }
    if (rec[1] > 2) {
        nsrf_fatal("'%s' event %llu has srcCount %u (max 2)",
                   path.c_str(),
                   static_cast<unsigned long long>(index), rec[1]);
    }
    if (rec[2] & ~0x3u) {
        nsrf_fatal("'%s' event %llu has unknown flag bits 0x%02x",
                   path.c_str(),
                   static_cast<unsigned long long>(index), rec[2]);
    }
}

TraceEvent
unpack(const std::array<unsigned char, recordBytes> &rec)
{
    TraceEvent ev;
    ev.kind = static_cast<EventKind>(rec[0]);
    ev.srcCount = rec[1];
    ev.hasDst = (rec[2] & 1) != 0;
    ev.memRef = (rec[2] & 2) != 0;
    ev.src[0] = rec[3];
    ev.src[1] = rec[4];
    ev.dst = rec[5];
    std::uint64_t ctx;
    std::memcpy(&ctx, rec.data() + 8, 8);
    ev.ctx = ctx;
    return ev;
}

} // namespace

std::uint64_t
captureTrace(TraceGenerator &gen, const std::string &path,
             std::uint64_t max_events)
{
    std::FILE *out = std::fopen(path.c_str(), "wb");
    if (!out)
        nsrf_fatal("cannot open trace file '%s' for writing",
                   path.c_str());

    // A short write (disk full, quota, I/O error) must not leave a
    // plausible-looking partial file behind: remove it and die.
    auto fail = [&](const char *what) {
        std::fclose(out);
        std::remove(path.c_str());
        nsrf_fatal("%s while writing trace file '%s'", what,
                   path.c_str());
    };

    // Header: magic + count placeholder (patched at the end).
    if (std::fwrite(magic, 1, sizeof(magic), out) != sizeof(magic))
        fail("short write");
    std::uint64_t count = 0;
    if (std::fwrite(&count, sizeof(count), 1, out) != 1)
        fail("short write");

    TraceEvent ev;
    while (gen.next(ev)) {
        if (ev.kind == EventKind::End)
            break;
        nsrf_assert(ev.srcCount <= 2 && ev.src[0] < 256 &&
                        ev.src[1] < 256 && ev.dst < 256,
                    "register index too wide for the trace format");
        auto rec = pack(ev);
        if (std::fwrite(rec.data(), 1, rec.size(), out) !=
            rec.size()) {
            fail("short write");
        }
        ++count;
        if (max_events && count >= max_events)
            break;
    }

    if (std::fseek(out, sizeof(magic), SEEK_SET) != 0)
        fail("seek failure");
    if (std::fwrite(&count, sizeof(count), 1, out) != 1)
        fail("short write");
    if (std::fclose(out) != 0) {
        // fclose flushes the stdio buffer; a failure here is still a
        // short write.
        std::remove(path.c_str());
        nsrf_fatal("close failure while writing trace file '%s'",
                   path.c_str());
    }
    return count;
}

FileTraceGenerator::FileTraceGenerator(const std::string &path)
{
    std::FILE *in = std::fopen(path.c_str(), "rb");
    if (!in)
        nsrf_fatal("cannot open trace file '%s'", path.c_str());

    char head[8];
    if (std::fread(head, 1, sizeof(head), in) != sizeof(head) ||
        std::memcmp(head, magic, sizeof(magic)) != 0) {
        std::fclose(in);
        nsrf_fatal("'%s' is not an NSRF trace file", path.c_str());
    }
    std::uint64_t count = 0;
    if (std::fread(&count, sizeof(count), 1, in) != 1) {
        std::fclose(in);
        nsrf_fatal("'%s' has a truncated header", path.c_str());
    }

    // Never trust the header's count: a corrupt (or malicious)
    // value would make the reserve() below attempt a giant
    // allocation before the truncation check ever ran.  Bound it by
    // what the file can actually hold.
    if (std::fseek(in, 0, SEEK_END) != 0) {
        std::fclose(in);
        nsrf_fatal("cannot size trace file '%s'", path.c_str());
    }
    long file_bytes = std::ftell(in);
    if (file_bytes < 0) {
        std::fclose(in);
        nsrf_fatal("cannot size trace file '%s'", path.c_str());
    }
    std::uint64_t payload =
        static_cast<std::uint64_t>(file_bytes) > headerBytes
            ? static_cast<std::uint64_t>(file_bytes) - headerBytes
            : 0;
    if (count > payload / recordBytes) {
        std::fclose(in);
        nsrf_fatal("'%s' claims %llu events but holds at most %llu",
                   path.c_str(),
                   static_cast<unsigned long long>(count),
                   static_cast<unsigned long long>(
                       payload / recordBytes));
    }
    if (std::fseek(in, headerBytes, SEEK_SET) != 0) {
        std::fclose(in);
        nsrf_fatal("cannot rewind trace file '%s'", path.c_str());
    }

    events_.reserve(count);
    std::array<unsigned char, recordBytes> rec;
    for (std::uint64_t i = 0; i < count; ++i) {
        if (std::fread(rec.data(), 1, rec.size(), in) !=
            rec.size()) {
            std::fclose(in);
            nsrf_fatal("'%s' is truncated at event %llu",
                       path.c_str(),
                       static_cast<unsigned long long>(i));
        }
        validateRecord(rec, path, i);
        events_.push_back(unpack(rec));
    }
    std::fclose(in);
}

bool
FileTraceGenerator::next(TraceEvent &ev)
{
    if (done_)
        return false;
    if (pos_ == events_.size()) {
        ev = TraceEvent::marker(EventKind::End);
        done_ = true;
        return true;
    }
    ev = events_[pos_++];
    return true;
}

void
FileTraceGenerator::reset()
{
    pos_ = 0;
    done_ = false;
}

} // namespace nsrf::sim
