/**
 * @file
 * The trace-driven register file simulator (paper §7).
 *
 * Feeds a TraceGenerator's event stream into a register file built
 * by the factory, charging a simple cycle model:
 *
 *   cycles = instructions                  (base CPI of 1)
 *          + memRefExtra per memory ref    (cache-hit data access)
 *          + every stall the register file charges for misses,
 *            spills, reloads, and context-switch processing.
 *
 * The spill/reload overhead fraction of Figure 14 is
 * regfile-stall-cycles / total cycles.
 */

#ifndef NSRF_SIM_SIMULATOR_HH
#define NSRF_SIM_SIMULATOR_HH

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "nsrf/common/counter_random.hh"
#include "nsrf/mem/memsys.hh"
#include "nsrf/regfile/factory.hh"
#include "nsrf/runtime/allocators.hh"
#include "nsrf/sim/trace.hh"

namespace nsrf::snapshot
{
struct SnapshotAccess;
} // namespace nsrf::snapshot

namespace nsrf::sim
{

/** Cycle-model and plumbing parameters for one simulation. */
struct SimConfig
{
    regfile::RegFileConfig rf;
    /** Data cache in front of the backing store; nullopt = uncached. */
    std::optional<mem::CacheConfig> cache = mem::CacheConfig{};
    Cycles memLatency = 20;
    /** Extra cycles per memory-referencing instruction when data
     * traffic modelling is off. */
    Cycles memRefExtra = 1;
    /**
     * Optionally model the program's own loads and stores as real
     * cache accesses so they compete with register spill/reload
     * traffic for cache space.  Off by default: the fixed
     * memRefExtra keeps the base CPI in the lean 1.3-1.6 range the
     * paper's Sparc2 emulator produces, which is what the Figure 14
     * overhead fractions are measured against.
     */
    bool modelDataTraffic = false;
    Addr dataRegionBytes = 1u << 20;   //!< cold region size
    Addr hotRegionBytes = 16u << 10;   //!< hot region size
    double hotFraction = 0.85;         //!< refs hitting the hot set
    std::uint64_t dataSeed = 0xd1ce;
    /** Hardware CID space for handle mapping.  When live
     * activations exceed it, the simulator virtualizes the name
     * space (paper §4.3 / [1]): the least-recently-run activation
     * is flushed to its backing frame, its CID reassigned, and the
     * parked activation rebound on demand. */
    ContextId cidCapacity = 4096;
    /** Stop after this many instructions (0 = trace length). */
    std::uint64_t maxInstructions = 0;
};

/** Everything a run produced. */
struct RunResult
{
    std::string regfileDescription;
    std::uint64_t instructions = 0;
    std::uint64_t contextSwitches = 0;
    Cycles cycles = 0;
    Cycles regStallCycles = 0;

    std::uint64_t regsSpilled = 0;
    std::uint64_t regsReloaded = 0;
    std::uint64_t liveRegsReloaded = 0;
    std::uint64_t readMisses = 0;
    std::uint64_t writeMisses = 0;
    /** Activations flushed to virtualize the CID space. */
    std::uint64_t cidEvictions = 0;

    double meanActiveRegs = 0;   //!< registers holding live data
    double maxActiveRegs = 0;
    double meanResidentContexts = 0;
    double meanUtilization = 0;  //!< meanActiveRegs / totalRegs
    double maxUtilization = 0;

    /** Reloads as a fraction of instructions (Figures 10, 12, 13). */
    double
    reloadsPerInstr() const
    {
        return instructions == 0
                   ? 0.0
                   : double(regsReloaded) / double(instructions);
    }

    /** Live reloads as a fraction of instructions. */
    double
    liveReloadsPerInstr() const
    {
        return instructions == 0
                   ? 0.0
                   : double(liveRegsReloaded) / double(instructions);
    }

    /** Spill/reload overhead fraction of run time (Figure 14). */
    double
    overheadFraction() const
    {
        return cycles == 0 ? 0.0
                           : double(regStallCycles) / double(cycles);
    }

    /** Instructions per context switch (Table 1). */
    double
    instrPerSwitch() const
    {
        return contextSwitches == 0
                   ? double(instructions)
                   : double(instructions) / double(contextSwitches);
    }
};

/** Drives one register file with one trace. */
class TraceSimulator
{
  public:
    explicit TraceSimulator(const SimConfig &config);

    /** Consume @p gen until End (or the instruction cap). */
    RunResult run(TraceGenerator &gen);

    /**
     * Re-entrant chunked execution, the lane-batching surface: a
     * sweep group decodes one generator's event stream once and
     * feeds each chunk to every lane's simulator.  beginRun(), then
     * stepRun() any partition of the stream, then finishRun(), is
     * exactly run() — same devirtualized kernels, same arithmetic,
     * bit-identical RunResult.  run() itself is implemented on top
     * of these.
     */
    void beginRun();

    /**
     * Feed @p count decoded events.  @return false once the run has
     * finished (End event seen, or the instruction cap reached);
     * chunks after that are ignored, so lanes that end early simply
     * coast while the rest of the group drains the stream.
     */
    bool stepRun(const TraceEvent *events, std::size_t count);

    /** Finalize the register file and collect the chunked run. */
    RunResult finishRun();

    /**
     * Hint the register-file state the leading events of a chunk
     * will touch toward the cache.  Purely a hint — no state,
     * counter, or result changes, so dropping the call is always
     * bit-identical.  The lane-interleaved sweep loop issues this
     * for lane i+1's simulator while lane i executes the same
     * chunk, overlapping the next lane's cold CAM and metadata
     * misses with the current lane's work.
     */
    void prefetchFor(const TraceEvent *events,
                     std::size_t count) const;

    /** @return the register file (valid after construction). */
    regfile::RegisterFile &registerFile() { return *rf_; }

    /** @return the backing memory system. */
    mem::MemorySystem &memorySystem() { return memsys_; }

    /** @return the configuration this simulator was built from. */
    const SimConfig &config() const { return config_; }

    /** @return instructions executed so far in the current run. */
    std::uint64_t instructionsRun() const { return loop_.instructions; }

    /**
     * @return trace events fully processed so far in the current
     * run.  On resume from a snapshot, skipping exactly this many
     * events of a fresh generator re-synchronizes the stream: the
     * event at this position is the first one not yet applied (the
     * cap check fires before an event is processed).
     */
    std::uint64_t eventsConsumed() const { return loop_.eventsConsumed; }

    /** @return true once the run has finished (End or cap). */
    bool runDone() const { return loop_.done; }

    /** @return true between beginRun() and finishRun(). */
    bool runInProgress() const { return running_; }

    /**
     * Replace the instruction cap mid-run (0 = trace length).  Used
     * when resuming from a snapshot taken under a different cap: a
     * warmup-prefix snapshot capped at K restores into a run capped
     * at M >= K and simulates only the tail.  A restored run whose
     * instructions already meet the new cap is immediately done and
     * coasts (the lane-group early-finish path).
     */
    void setInstructionCap(std::uint64_t cap);

  private:
    friend struct ::nsrf::snapshot::SnapshotAccess;

    /** Per-activation bookkeeping for CID virtualization. */
    struct HandleState
    {
        ContextId cid = invalidContext; //!< bound hardware CID
        Addr frame = invalidAddr;       //!< backing frame
        std::uint64_t lastUse = 0;
    };

    /** Event-loop state carried across stepRun() chunks. */
    struct LoopState
    {
        std::uint64_t instructions = 0;
        Cycles cycles = 0;
        ContextId current = invalidContext;
        CtxHandle currentHandle = invalidHandle;
        Word scratch = 0;
        bool done = false;
        /** Events fully processed (every non-End event is exactly
         * one instruction, so this equals instructions — tracked
         * separately so snapshot resume stays correct if that ever
         * changes). */
        std::uint64_t eventsConsumed = 0;
        /** The stream's End marker has been reached; the run can
         * never continue, whatever the cap. */
        bool sawEnd = false;
    };

    /**
     * One chunk of the event loop, templated on the concrete
     * register file type: the per-event read/write/switch calls
     * devirtualize against the final NamedStateRegisterFile instead
     * of paying a virtual dispatch per register access.
     */
    template <typename RF>
    void stepChunk(LoopState &state, const TraceEvent *events,
                   std::size_t count, RF &rf);

    /**
     * stepChunk over the typed one-word kernel view, with the
     * compile-time (miss, write) policy pair folded in, so the
     * access kernels inline into the loop with every policy branch
     * gone.
     */
    template <regfile::MissPolicy MP, regfile::WritePolicy WP>
    void stepOneWord(LoopState &state, const TraceEvent *events,
                     std::size_t count);

    /** stepChunk against the devirtualized (but policy-branching)
     * NamedStateRegisterFile. */
    void stepNsf(LoopState &state, const TraceEvent *events,
                 std::size_t count);

    /** stepChunk through the virtual base interface. */
    void stepGeneric(LoopState &state, const TraceEvent *events,
                     std::size_t count);

    using StepFn = void (TraceSimulator::*)(LoopState &,
                                            const TraceEvent *,
                                            std::size_t);

    /**
     * The kernel dispatch ladder, resolved once at construction
     * after the factory builds the register file: one type test and
     * one policy switch pick the stepChunk instantiation every
     * chunk of this run dispatches to.
     */
    StepFn resolveStepFn() const;

    /** Record a bound activation's recency for victim selection. */
    void noteUse(CtxHandle handle, std::uint64_t last_use);

    /** @return the bound CID for @p handle, rebinding if parked. */
    ContextId mapContext(CtxHandle handle, Cycles &cycles);
    void unmapContext(CtxHandle handle);

    /** Create and bind a fresh activation. */
    ContextId createContext(CtxHandle handle, Cycles &cycles);

    /** Flush the coldest bound activation to free a CID. */
    ContextId stealCid(Cycles &cycles);

    /** One modelled program load/store; @return its latency. */
    Cycles dataAccess();

    SimConfig config_;
    CounterRandom dataRng_;
    mem::MemorySystem memsys_;
    std::unique_ptr<regfile::RegisterFile> rf_;
    runtime::CidAllocator cids_;
    runtime::FrameAllocator frames_;
    std::unordered_map<CtxHandle, HandleState> handles_;
    std::unordered_map<ContextId, CtxHandle> cidToHandle_;
    /**
     * Bound activations ordered by recency: a lazy min-heap of
     * (lastUse, handle) snapshots.  Entries go stale when an
     * activation is re-run, parked, or destroyed; stealCid() skips
     * them on pop, so a steal is O(log n) instead of a linear scan
     * of every live activation (quadratic under small CID spaces).
     */
    std::vector<std::pair<std::uint64_t, CtxHandle>> lruHeap_;
    std::size_t boundCount_ = 0;
    std::uint64_t useClock_ = 0;
    std::uint64_t cidEvictions_ = 0;
    StepFn stepFn_ = nullptr;
    LoopState loop_;
    bool running_ = false;
};

/** Convenience: build a simulator from @p config and run @p gen. */
RunResult runTrace(const SimConfig &config, TraceGenerator &gen);

} // namespace nsrf::sim

#endif // NSRF_SIM_SIMULATOR_HH
