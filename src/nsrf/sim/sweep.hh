/**
 * @file
 * Parallel sweep execution over independent simulation cells.
 *
 * Every figure and ablation bench is a sweep: a cross product of
 * (workload, register file configuration, simulation parameters)
 * cells, each of which is a completely independent trace-driven
 * simulation.  SweepRunner runs those cells across a work-queue
 * thread pool.
 *
 * Determinism contract: a cell carries its own SimConfig (with all
 * seeds) and a generator *factory* that builds a fresh TraceGenerator
 * per run, so no mutable state is shared between cells.  Results are
 * written into a slot per cell, indexed by queue position.  Hence an
 * N-thread run produces bit-identical RunResults to a 1-thread run —
 * only completion order differs.  Tests pin this property.
 *
 * The structured results layer (sweepResultsJson) serializes each
 * cell's configuration provenance and RunResult to JSON so bench
 * trajectories (BENCH_*.json) can be diffed across commits.
 */

#ifndef NSRF_SIM_SWEEP_HH
#define NSRF_SIM_SWEEP_HH

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nsrf/sim/simulator.hh"
#include "nsrf/sim/trace.hh"

namespace nsrf::stats
{
class JsonWriter;
} // namespace nsrf::stats

namespace nsrf::sim
{

/**
 * Run body(0..count-1) across a work-queue thread pool of @p jobs
 * workers (0 = one per hardware thread; the pool never exceeds
 * @p count).  Indices are claimed from an atomic counter, so each
 * runs exactly once; with one worker the loop degenerates to a plain
 * serial for.  The first exception thrown by any body is rethrown
 * after every worker has drained.
 *
 * This is the execution core of SweepRunner, exposed so other
 * embarrassingly-parallel drivers (the fuzzer's --jobs mode) share
 * the same pool semantics.  The body must make each index
 * independent — any cross-index state needs its own synchronization.
 */
void parallelFor(unsigned jobs, std::size_t count,
                 const std::function<void(std::size_t)> &body);

/** Builds a fresh generator for one run of a cell. */
using GeneratorFactory =
    std::function<std::unique_ptr<TraceGenerator>()>;

/** One independent simulation in a sweep. */
struct SweepCell
{
    /** Human-readable cell name, e.g. "GateSim/nsf". */
    std::string label;
    SimConfig config;
    /** Must create a fresh, identically-seeded generator per call. */
    GeneratorFactory makeGenerator;
    /** Extra provenance recorded verbatim in the JSON output. */
    std::vector<std::pair<std::string, std::string>> provenance;
    /**
     * When non-empty (and the build has NSRF_TRACE=ON), capture this
     * cell's timeline and export it as Perfetto JSON here, plus a
     * windowed metrics snapshot at "<traceOut>.metrics".  Each cell
     * traces into its own thread-bound buffer, so per-cell traces
     * work under any --jobs count.  Ignored (with a warning) in
     * builds without the tracing hooks.
     */
    std::string traceOut;
    /** Metrics window in cycles (0 = one whole-run window). */
    std::uint64_t traceWindow = 0;
    /**
     * Lane-batching key.  Cells carrying the same non-empty key
     * promise that their makeGenerator factories produce identical
     * event streams (same profile, seed, and length); the runner
     * decodes that stream once per group and feeds each chunk to
     * every member's simulator (TraceSimulator::stepRun), so the
     * trace-generation cost is paid once instead of once per cell.
     * Results stay bit-identical to solo runs — each lane consumes
     * the exact events a private generator would have produced.
     * Empty (the default) runs the cell solo; cells capturing a
     * timeline (traceOut) always run solo because the tracer is
     * bound to one run at a time.
     */
    std::string streamKey;
};

/**
 * Partition sweep cells into the units a worker pool claims: lane
 * groups keyed by streamKey, and solo cells (no key, or a timeline
 * capture).  Each unit is a vector of cell indices; a unit of one
 * runs solo, larger units run lane-batched over one decoded stream.
 *
 * The partition is jobs-aware: when the initial unit count would
 * leave workers idle, the largest lane groups are split in half
 * (repeatedly, largest first, ties to the lowest unit) until there
 * are at least @p jobs units or nothing splittable remains.  Every
 * sub-group re-decodes the shared stream from its own fresh
 * generator, and a lane's RunResult depends only on its config and
 * that stream, so any split of a group is bit-identical to the
 * unsplit run — the split trades decode duplication for thread
 * occupancy.  Never splits at jobs <= 1 (0 resolves to the hardware
 * thread count first).
 *
 * @param max_group when > 0, additionally slice every group to at
 *                  most this many lanes (a test/bench override;
 *                  0 = no cap).  Applied before the jobs-aware
 *                  splitting.
 *
 * Deterministic given (cells, jobs, max_group): callers that
 * partition separately (the prefix-restored sweep) see the exact
 * same units as SweepRunner::run.
 */
std::vector<std::vector<std::size_t>>
partitionSweepUnits(const std::vector<SweepCell> &cells,
                    unsigned jobs, std::size_t max_group = 0);

/** Work-queue thread pool over sweep cells. */
class SweepRunner
{
  public:
    /** Events per decoded chunk in the lane-group step loop when no
     * explicit chunk size is configured. */
    static constexpr std::size_t kDefaultLaneChunk = 512;

    /**
     * @param jobs worker threads; 0 = one per hardware thread.
     * @param lane_chunk events decoded per chunk when stepping a
     *        lane group (0 = kDefaultLaneChunk).  Any chunk size
     *        yields bit-identical results — stepRun accepts any
     *        partition of the stream — so this is purely a
     *        throughput/footprint knob (chunk bytes vs per-chunk
     *        loop overhead).
     */
    explicit SweepRunner(unsigned jobs = 0,
                         std::size_t lane_chunk = 0);

    /** @return the resolved worker count (>= 1). */
    unsigned jobs() const { return jobs_; }

    /** @return the resolved lane-group chunk size (>= 1). */
    std::size_t laneChunk() const { return laneChunk_; }

    /** @return the hardware thread count (>= 1). */
    static unsigned hardwareJobs();

    /**
     * Run every cell; @return one RunResult per cell, in cell
     * order, independent of the worker count.
     */
    std::vector<RunResult> run(
        const std::vector<SweepCell> &cells) const;

  private:
    unsigned jobs_;
    std::size_t laneChunk_;
};

/**
 * Append `"config": {...}` for @p config to an open JSON object.
 * Shared by sweepResultsJson and the serving layer's responses so
 * a config always serializes the same way.
 */
void appendConfigJson(stats::JsonWriter &json,
                      const SimConfig &config);

/** Append `"result": {...}` for @p result (same sharing rationale:
 * a served result must look exactly like a simulated one). */
void appendResultJson(stats::JsonWriter &json, const RunResult &r);

/**
 * Serialize a finished sweep — config provenance plus RunResult per
 * cell — as a JSON document:
 *
 *   {"bench": ..., "jobs": N, "cells": [
 *     {"label": ..., <provenance...>, "config": {...},
 *      "result": {...}}, ...]}
 */
std::string sweepResultsJson(const std::string &bench_name,
                             const std::vector<SweepCell> &cells,
                             const std::vector<RunResult> &results,
                             unsigned jobs);

/**
 * Write sweepResultsJson to @p path.  @return false (with a warning)
 * when the file cannot be written.
 */
bool writeSweepResultsJson(const std::string &path,
                           const std::string &bench_name,
                           const std::vector<SweepCell> &cells,
                           const std::vector<RunResult> &results,
                           unsigned jobs);

} // namespace nsrf::sim

#endif // NSRF_SIM_SWEEP_HH
