/**
 * @file
 * Parallel sweep execution over independent simulation cells.
 *
 * Every figure and ablation bench is a sweep: a cross product of
 * (workload, register file configuration, simulation parameters)
 * cells, each of which is a completely independent trace-driven
 * simulation.  SweepRunner runs those cells across a work-queue
 * thread pool.
 *
 * Determinism contract: a cell carries its own SimConfig (with all
 * seeds) and a generator *factory* that builds a fresh TraceGenerator
 * per run, so no mutable state is shared between cells.  Results are
 * written into a slot per cell, indexed by queue position.  Hence an
 * N-thread run produces bit-identical RunResults to a 1-thread run —
 * only completion order differs.  Tests pin this property.
 *
 * The structured results layer (sweepResultsJson) serializes each
 * cell's configuration provenance and RunResult to JSON so bench
 * trajectories (BENCH_*.json) can be diffed across commits.
 */

#ifndef NSRF_SIM_SWEEP_HH
#define NSRF_SIM_SWEEP_HH

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nsrf/sim/simulator.hh"
#include "nsrf/sim/trace.hh"

namespace nsrf::stats
{
class JsonWriter;
} // namespace nsrf::stats

namespace nsrf::sim
{

/**
 * Run body(0..count-1) across a work-queue thread pool of @p jobs
 * workers (0 = one per hardware thread; the pool never exceeds
 * @p count).  Indices are claimed from an atomic counter, so each
 * runs exactly once; with one worker the loop degenerates to a plain
 * serial for.  The first exception thrown by any body is rethrown
 * after every worker has drained.
 *
 * This is the execution core of SweepRunner, exposed so other
 * embarrassingly-parallel drivers (the fuzzer's --jobs mode) share
 * the same pool semantics.  The body must make each index
 * independent — any cross-index state needs its own synchronization.
 */
void parallelFor(unsigned jobs, std::size_t count,
                 const std::function<void(std::size_t)> &body);

/** Builds a fresh generator for one run of a cell. */
using GeneratorFactory =
    std::function<std::unique_ptr<TraceGenerator>()>;

/** One independent simulation in a sweep. */
struct SweepCell
{
    /** Human-readable cell name, e.g. "GateSim/nsf". */
    std::string label;
    SimConfig config;
    /** Must create a fresh, identically-seeded generator per call. */
    GeneratorFactory makeGenerator;
    /** Extra provenance recorded verbatim in the JSON output. */
    std::vector<std::pair<std::string, std::string>> provenance;
    /**
     * When non-empty (and the build has NSRF_TRACE=ON), capture this
     * cell's timeline and export it as Perfetto JSON here, plus a
     * windowed metrics snapshot at "<traceOut>.metrics".  Each cell
     * traces into its own thread-bound buffer, so per-cell traces
     * work under any --jobs count.  Ignored (with a warning) in
     * builds without the tracing hooks.
     */
    std::string traceOut;
    /** Metrics window in cycles (0 = one whole-run window). */
    std::uint64_t traceWindow = 0;
    /**
     * Lane-batching key.  Cells carrying the same non-empty key
     * promise that their makeGenerator factories produce identical
     * event streams (same profile, seed, and length); the runner
     * decodes that stream once per group and feeds each chunk to
     * every member's simulator (TraceSimulator::stepRun), so the
     * trace-generation cost is paid once instead of once per cell.
     * Results stay bit-identical to solo runs — each lane consumes
     * the exact events a private generator would have produced.
     * Empty (the default) runs the cell solo; cells capturing a
     * timeline (traceOut) always run solo because the tracer is
     * bound to one run at a time.
     */
    std::string streamKey;
};

/** Work-queue thread pool over sweep cells. */
class SweepRunner
{
  public:
    /** @param jobs worker threads; 0 = one per hardware thread. */
    explicit SweepRunner(unsigned jobs = 0);

    /** @return the resolved worker count (>= 1). */
    unsigned jobs() const { return jobs_; }

    /** @return the hardware thread count (>= 1). */
    static unsigned hardwareJobs();

    /**
     * Run every cell; @return one RunResult per cell, in cell
     * order, independent of the worker count.
     */
    std::vector<RunResult> run(
        const std::vector<SweepCell> &cells) const;

  private:
    unsigned jobs_;
};

/**
 * Append `"config": {...}` for @p config to an open JSON object.
 * Shared by sweepResultsJson and the serving layer's responses so
 * a config always serializes the same way.
 */
void appendConfigJson(stats::JsonWriter &json,
                      const SimConfig &config);

/** Append `"result": {...}` for @p result (same sharing rationale:
 * a served result must look exactly like a simulated one). */
void appendResultJson(stats::JsonWriter &json, const RunResult &r);

/**
 * Serialize a finished sweep — config provenance plus RunResult per
 * cell — as a JSON document:
 *
 *   {"bench": ..., "jobs": N, "cells": [
 *     {"label": ..., <provenance...>, "config": {...},
 *      "result": {...}}, ...]}
 */
std::string sweepResultsJson(const std::string &bench_name,
                             const std::vector<SweepCell> &cells,
                             const std::vector<RunResult> &results,
                             unsigned jobs);

/**
 * Write sweepResultsJson to @p path.  @return false (with a warning)
 * when the file cannot be written.
 */
bool writeSweepResultsJson(const std::string &path,
                           const std::string &bench_name,
                           const std::vector<SweepCell> &cells,
                           const std::vector<RunResult> &results,
                           unsigned jobs);

} // namespace nsrf::sim

#endif // NSRF_SIM_SWEEP_HH
