/**
 * @file
 * Binary trace capture and replay.
 *
 * The paper's experiments were driven by traces cross-compiled
 * once and replayed against many register file organizations.
 * These helpers provide the same workflow: capture any
 * TraceGenerator's stream to a compact binary file, then replay it
 * bit-identically as many times as needed (or ship it to someone
 * else's machine).
 *
 * Format: a 16-byte header ("NSRFTRC1", version, event count)
 * followed by fixed 16-byte records:
 *
 *     u8  kind        u8 srcCount   u8 flags (1=hasDst, 2=memRef)
 *     u8  src0        u8 src1       u8 dst
 *     u16 reserved    u64 ctx
 *
 * The multi-byte fields (the header's event count and each record's
 * ctx handle) are written in host byte order: trace files are
 * portable between machines of the same endianness only.  Every
 * platform this project targets is little-endian; a big-endian
 * reader would fail the count-vs-size check below rather than
 * silently replaying garbage.
 *
 * A reader never trusts the file: the header count is clamped
 * against the actual file size, and every record's kind, srcCount,
 * and flag bits are validated before it is replayed (fatal on the
 * first violation).
 */

#ifndef NSRF_SIM_TRACEFILE_HH
#define NSRF_SIM_TRACEFILE_HH

#include <cstdio>
#include <string>
#include <vector>

#include "nsrf/sim/trace.hh"

namespace nsrf::sim
{

/**
 * Drain @p gen (up to @p max_events, 0 = until End) into @p path.
 * @return the number of events written (excluding the End marker).
 */
std::uint64_t captureTrace(TraceGenerator &gen,
                           const std::string &path,
                           std::uint64_t max_events = 0);

/** Replays a trace file written by captureTrace(). */
class FileTraceGenerator : public TraceGenerator
{
  public:
    /** Opens and validates @p path; fatal on a malformed file. */
    explicit FileTraceGenerator(const std::string &path);

    bool next(TraceEvent &ev) override;
    void reset() override;

    /** @return events in the file (excluding the End marker). */
    std::uint64_t size() const { return events_.size(); }

  private:
    std::vector<TraceEvent> events_;
    std::size_t pos_ = 0;
    bool done_ = false;
};

} // namespace nsrf::sim

#endif // NSRF_SIM_TRACEFILE_HH
