#include "nsrf/sim/sweep.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <map>
#include <mutex>
#include <thread>

#include "nsrf/common/logging.hh"
#include "nsrf/stats/json.hh"
#include "nsrf/trace/export.hh"
#include "nsrf/trace/hooks.hh"

namespace nsrf::sim
{

namespace
{

const char *
missPolicyName(regfile::MissPolicy policy)
{
    switch (policy) {
      case regfile::MissPolicy::ReloadLine: return "line";
      case regfile::MissPolicy::ReloadLive: return "live";
      case regfile::MissPolicy::ReloadSingle: return "single";
    }
    return "?";
}

const char *
writePolicyName(regfile::WritePolicy policy)
{
    return policy == regfile::WritePolicy::FetchOnWrite ? "fow"
                                                        : "wa";
}

const char *
mechanismName(regfile::SpillMechanism mechanism)
{
    return mechanism == regfile::SpillMechanism::SoftwareTrap ? "sw"
                                                              : "hw";
}

} // namespace

void
appendConfigJson(stats::JsonWriter &json, const SimConfig &config)
{
    const auto &rf = config.rf;
    json.key("config").beginObject();
    json.field("org", regfile::organizationName(rf.org));
    json.field("totalRegs", rf.totalRegs);
    json.field("regsPerContext", rf.regsPerContext);
    json.field("regsPerLine", rf.regsPerLine);
    json.field("missPolicy", missPolicyName(rf.missPolicy));
    json.field("writePolicy", writePolicyName(rf.writePolicy));
    json.field("replacement", cam::replacementName(rf.replacement));
    json.field("mechanism", mechanismName(rf.mechanism));
    json.field("trackValid", rf.trackValid);
    json.field("backgroundTransfer", rf.backgroundTransfer);
    json.field("spillDirtyOnly", rf.spillDirtyOnly);
    json.field("seed", rf.seed);
    json.field("memLatency", std::uint64_t(config.memLatency));
    json.field("cidCapacity",
               std::uint64_t(config.cidCapacity));
    json.field("maxInstructions", config.maxInstructions);
    json.endObject();
}

void
appendResultJson(stats::JsonWriter &json, const RunResult &r)
{
    json.key("result").beginObject();
    json.field("regfile", r.regfileDescription);
    json.field("instructions", r.instructions);
    json.field("contextSwitches", r.contextSwitches);
    json.field("cycles", std::uint64_t(r.cycles));
    json.field("regStallCycles", std::uint64_t(r.regStallCycles));
    json.field("regsSpilled", r.regsSpilled);
    json.field("regsReloaded", r.regsReloaded);
    json.field("liveRegsReloaded", r.liveRegsReloaded);
    json.field("readMisses", r.readMisses);
    json.field("writeMisses", r.writeMisses);
    json.field("cidEvictions", r.cidEvictions);
    json.field("meanActiveRegs", r.meanActiveRegs);
    json.field("maxActiveRegs", r.maxActiveRegs);
    json.field("meanResidentContexts", r.meanResidentContexts);
    json.field("meanUtilization", r.meanUtilization);
    json.field("maxUtilization", r.maxUtilization);
    json.field("reloadsPerInstr", r.reloadsPerInstr());
    json.field("liveReloadsPerInstr", r.liveReloadsPerInstr());
    json.field("overheadFraction", r.overheadFraction());
    json.field("instrPerSwitch", r.instrPerSwitch());
    json.endObject();
}

void
parallelFor(unsigned jobs, std::size_t count,
            const std::function<void(std::size_t)> &body)
{
    if (count == 0)
        return;
    if (jobs == 0)
        jobs = SweepRunner::hardwareJobs();
    unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(jobs, count));
    if (workers <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::exception_ptr error;
    std::mutex error_mutex;
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&]() {
            while (true) {
                std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= count)
                    return;
                try {
                    body(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(error_mutex);
                    if (!error)
                        error = std::current_exception();
                }
            }
        });
    }
    for (auto &thread : pool)
        thread.join();
    if (error)
        std::rethrow_exception(error);
}

SweepRunner::SweepRunner(unsigned jobs, std::size_t lane_chunk)
    : jobs_(jobs == 0 ? hardwareJobs() : jobs),
      laneChunk_(lane_chunk == 0 ? kDefaultLaneChunk : lane_chunk)
{
}

unsigned
SweepRunner::hardwareJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

std::vector<std::vector<std::size_t>>
partitionSweepUnits(const std::vector<SweepCell> &cells,
                    unsigned jobs, std::size_t max_group)
{
    std::vector<std::vector<std::size_t>> units;
    std::map<std::string, std::size_t> group_of;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const SweepCell &cell = cells[i];
        nsrf_assert(cell.makeGenerator != nullptr,
                    "sweep cell '%s' has no generator factory",
                    cell.label.c_str());
        if (!cell.streamKey.empty() && cell.traceOut.empty()) {
            auto [it, fresh] =
                group_of.emplace(cell.streamKey, units.size());
            if (fresh)
                units.emplace_back();
            units[it->second].push_back(i);
        } else {
            units.emplace_back(1, i);
        }
    }

    // Split one unit in two at lane h, appending the tail as a new
    // unit.  Lane order within each half is preserved (ascending
    // cell indices), so the halves are themselves valid groups.
    // Build the tail before touching `units`: growing it would
    // invalidate any reference held into the vector.
    auto split = [&units](std::size_t u) {
        std::size_t h = (units[u].size() + 1) / 2;
        std::vector<std::size_t> tail(
            units[u].begin() + static_cast<std::ptrdiff_t>(h),
            units[u].end());
        units[u].resize(h);
        units.push_back(std::move(tail));
    };

    // Explicit group-width cap first (tests and benches).
    if (max_group > 0) {
        for (std::size_t u = 0; u < units.size(); ++u) {
            while (units[u].size() > max_group)
                split(u);
        }
    }

    // Jobs-aware splitting: a sweep of a few huge lane groups would
    // otherwise occupy a few workers and idle the rest.  Halving
    // the largest group (ties to the lowest unit) is deterministic,
    // and each split only duplicates stream decoding — lane results
    // cannot change.
    unsigned workers =
        jobs == 0 ? SweepRunner::hardwareJobs() : jobs;
    while (workers > 1 && units.size() < workers) {
        std::size_t widest = 0;
        for (std::size_t u = 1; u < units.size(); ++u) {
            if (units[u].size() > units[widest].size())
                widest = u;
        }
        if (units[widest].size() < 2)
            break;
        split(widest);
    }
    return units;
}

namespace
{

/** Run one cell on its own private generator (the classic path). */
void
runSoloCell(const SweepCell &cell, RunResult &result)
{
    auto gen = cell.makeGenerator();
    if (!cell.traceOut.empty() && trace::compiledIn) {
        // Bind a tracer to this worker thread for the duration
        // of the run; concurrent cells each get their own.
        trace::Tracer tracer;
        trace::Session session(tracer);
        result = runTrace(cell.config, *gen);
        trace::writePerfettoJson(tracer, cell.traceOut, cell.label);
        trace::writeMetricsText(tracer, cell.traceOut + ".metrics",
                                cell.traceWindow);
    } else {
        if (!cell.traceOut.empty()) {
            nsrf_warn("cell '%s' requests a trace but this "
                      "build has NSRF_TRACE=OFF",
                      cell.label.c_str());
        }
        result = runTrace(cell.config, *gen);
    }
}

/**
 * Run a group of cells sharing one event stream as lanes of a
 * single decode pass: the first lane's generator produces each
 * chunk once, and every lane's simulator steps through it
 * lane-major.  Lanes that finish early (instruction caps differ per
 * cell) coast while the stream drains for the rest.
 *
 * While lane i steps a chunk, lane i+1's simulator is asked to
 * prefetch the state the same chunk's leading events will touch
 * (CAM probe groups, Ctable entries), overlapping the next lane's
 * cold misses with the current lane's execution.  The hints change
 * no state, so the interleaving stays bit-identical to stepping the
 * lanes back to back.
 */
void
runLaneGroup(const std::vector<SweepCell> &cells,
             const std::vector<std::size_t> &lanes,
             std::vector<RunResult> &results,
             std::size_t chunk_capacity)
{
    auto gen = cells[lanes.front()].makeGenerator();
    std::vector<std::unique_ptr<TraceSimulator>> sims;
    sims.reserve(lanes.size());
    for (std::size_t i : lanes) {
        sims.push_back(
            std::make_unique<TraceSimulator>(cells[i].config));
        sims.back()->beginRun();
    }

    std::vector<TraceEvent> chunk(chunk_capacity);
    bool live = true;
    while (live) {
        std::size_t n = gen->fill(chunk.data(), chunk_capacity);
        if (n == 0)
            break;
        live = false;
        for (std::size_t s = 0; s < sims.size(); ++s) {
            if (s + 1 < sims.size())
                sims[s + 1]->prefetchFor(chunk.data(), n);
            // Always step every lane: |= would short-circuit.
            bool more = sims[s]->stepRun(chunk.data(), n);
            live = live || more;
        }
    }
    for (std::size_t k = 0; k < lanes.size(); ++k)
        results[lanes[k]] = sims[k]->finishRun();
}

} // namespace

std::vector<RunResult>
SweepRunner::run(const std::vector<SweepCell> &cells) const
{
    std::vector<RunResult> results(cells.size());
    if (cells.empty())
        return results;

    // Units — not cells — are what the pool's workers claim, so a
    // group's lanes share one worker and one decoded stream (and a
    // group split for idle workers re-decodes per sub-group).
    std::vector<std::vector<std::size_t>> units =
        partitionSweepUnits(cells, jobs_);

    parallelFor(jobs_, units.size(), [&](std::size_t u) {
        const auto &unit = units[u];
        if (unit.size() == 1)
            runSoloCell(cells[unit.front()], results[unit.front()]);
        else
            runLaneGroup(cells, unit, results, laneChunk_);
    });
    return results;
}

std::string
sweepResultsJson(const std::string &bench_name,
                 const std::vector<SweepCell> &cells,
                 const std::vector<RunResult> &results, unsigned jobs)
{
    nsrf_assert(cells.size() == results.size(),
                "sweep has %zu cells but %zu results", cells.size(),
                results.size());
    stats::JsonWriter json;
    json.beginObject();
    json.field("bench", bench_name);
    json.field("jobs", jobs);
    json.field("cellCount", std::uint64_t(cells.size()));
    json.key("cells").beginArray();
    for (std::size_t i = 0; i < cells.size(); ++i) {
        json.beginObject();
        json.field("label", cells[i].label);
        for (const auto &[key, value] : cells[i].provenance)
            json.field(key, value);
        appendConfigJson(json, cells[i].config);
        appendResultJson(json, results[i]);
        json.endObject();
    }
    json.endArray();
    json.endObject();
    return json.str();
}

bool
writeSweepResultsJson(const std::string &path,
                      const std::string &bench_name,
                      const std::vector<SweepCell> &cells,
                      const std::vector<RunResult> &results,
                      unsigned jobs)
{
    std::string doc =
        sweepResultsJson(bench_name, cells, results, jobs);
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        nsrf_warn("cannot write sweep results to '%s'",
                  path.c_str());
        return false;
    }
    std::fputs(doc.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    return true;
}

} // namespace nsrf::sim
