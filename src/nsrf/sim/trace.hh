/**
 * @file
 * The register-reference trace the workload generators produce and
 * the trace-driven simulator consumes.
 *
 * The paper's evaluation (§7) drives a "flexible register file
 * simulator" with register-reference streams cross-compiled from
 * SPARC (sequential) and TAM (parallel) programs.  Register file
 * behaviour depends only on this event stream: which registers of
 * which contexts are read and written, and where activations are
 * created, destroyed, and switched.  TraceEvent is exactly that
 * stream.
 *
 * Context handles are generator-assigned virtual names; the
 * simulator maps them onto hardware Context IDs with the same
 * recycling allocator the runtime uses.
 */

#ifndef NSRF_SIM_TRACE_HH
#define NSRF_SIM_TRACE_HH

#include <cstddef>
#include <cstdint>

#include "nsrf/common/types.hh"

namespace nsrf::sim
{

/** A generator-scoped context name. */
using CtxHandle = std::uint64_t;

/** Distinguished handle meaning "none". */
inline constexpr CtxHandle invalidHandle =
    static_cast<CtxHandle>(-1);

/** What one trace event is. */
enum class EventKind : std::uint8_t
{
    /** One instruction of the current context: up to two register
     * sources and one destination. */
    Instr,
    /** Procedure call: create context @c ctx and switch to it. */
    Call,
    /** Procedure return: destroy the current context and switch to
     * @c ctx (the caller). */
    Return,
    /** Thread creation: create context @c ctx, stay in the current
     * one. */
    Spawn,
    /** Thread termination: destroy context @c ctx (never the
     * current one). */
    Terminate,
    /** Context switch to the existing context @c ctx. */
    Switch,
    /** Deallocate register @c dst of the current context. */
    FreeReg,
    /** End of trace. */
    End,
};

/** One event. */
struct TraceEvent
{
    EventKind kind = EventKind::Instr;
    CtxHandle ctx = invalidHandle; //!< Call/Return/Spawn/Term/Switch
    std::uint8_t srcCount = 0;     //!< Instr: number of sources
    RegIndex src[2] = {0, 0};      //!< Instr: source registers
    bool hasDst = false;           //!< Instr: writes a register
    RegIndex dst = 0;              //!< Instr dest, FreeReg target
    bool memRef = false;           //!< Instr touches data memory

    /** Shorthand constructors. */
    static TraceEvent
    instr(std::uint8_t src_count, RegIndex s0, RegIndex s1,
          bool has_dst, RegIndex dst_reg, bool mem_ref = false)
    {
        TraceEvent ev;
        ev.kind = EventKind::Instr;
        ev.srcCount = src_count;
        ev.src[0] = s0;
        ev.src[1] = s1;
        ev.hasDst = has_dst;
        ev.dst = dst_reg;
        ev.memRef = mem_ref;
        return ev;
    }

    static TraceEvent
    marker(EventKind kind, CtxHandle ctx = invalidHandle)
    {
        TraceEvent ev;
        ev.kind = kind;
        ev.ctx = ctx;
        return ev;
    }
};

/** Pull-based trace source. */
class TraceGenerator
{
  public:
    virtual ~TraceGenerator() = default;

    /**
     * Produce the next event.  @return false after the End event
     * has been produced (the End event itself returns true).
     */
    virtual bool next(TraceEvent &ev) = 0;

    /**
     * Produce up to @p cap events into @p buf; @return how many
     * were written (0 once the stream is exhausted).  Semantically
     * identical to draining next() — this default is the
     * specification.  Generators override it with the same loop so
     * the consumer pays one virtual call per batch instead of one
     * per event, and the generator's emit path inlines into its own
     * loop.
     */
    virtual std::size_t
    fill(TraceEvent *buf, std::size_t cap)
    {
        std::size_t n = 0;
        while (n < cap && next(buf[n]))
            ++n;
        return n;
    }

    /** Restart the trace from the beginning (same stream). */
    virtual void reset() = 0;
};

} // namespace nsrf::sim

#endif // NSRF_SIM_TRACE_HH
