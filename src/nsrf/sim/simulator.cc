#include "nsrf/sim/simulator.hh"

#include <algorithm>
#include <functional>

#include "nsrf/common/logging.hh"
#include "nsrf/regfile/named_state.hh"
#include "nsrf/trace/hooks.hh"

namespace nsrf::sim
{

TraceSimulator::TraceSimulator(const SimConfig &config)
    : config_(config),
      dataRng_(config.dataSeed, rngstream::dataValues),
      memsys_(config.cache, config.memLatency),
      cids_(config.cidCapacity),
      frames_(0x80000000u,
              config.rf.regsPerContext * wordBytes)
{
    rf_ = regfile::makeRegisterFile(config_.rf, memsys_);
    stepFn_ = resolveStepFn();
}

Cycles
TraceSimulator::dataAccess()
{
    // Program data lives well away from the backing frames at
    // 0x80000000.
    constexpr Addr data_base = 0x40000000u;
    Addr offset;
    if (dataRng_.chance(config_.hotFraction)) {
        offset = static_cast<Addr>(
            dataRng_.uniform(config_.hotRegionBytes / wordBytes));
    } else {
        offset = static_cast<Addr>(
            config_.hotRegionBytes / wordBytes +
            dataRng_.uniform(config_.dataRegionBytes / wordBytes));
    }
    Addr addr = data_base + offset * wordBytes;
    bool is_store = dataRng_.chance(0.3);
    if (is_store)
        return memsys_.writeWord(addr, 0);
    Word value;
    return memsys_.readWord(addr, value);
}

void
TraceSimulator::noteUse(CtxHandle handle, std::uint64_t last_use)
{
    lruHeap_.emplace_back(last_use, handle);
    std::push_heap(lruHeap_.begin(), lruHeap_.end(),
                   std::greater<>{});
    // Stale snapshots accumulate one per rebind/re-run; compact
    // once they dominate so the heap stays linear in live state.
    if (lruHeap_.size() > 2 * handles_.size() + 64) {
        lruHeap_.clear();
        lruHeap_.reserve(handles_.size());
        for (const auto &[h, state] : handles_) {
            if (state.cid != invalidContext)
                lruHeap_.emplace_back(state.lastUse, h);
        }
        std::make_heap(lruHeap_.begin(), lruHeap_.end(),
                       std::greater<>{});
    }
}

ContextId
TraceSimulator::stealCid(Cycles &cycles)
{
    // Flush the least-recently-run bound activation (never the
    // most recent: the trace is about to run it) and reuse its
    // hardware CID — the software CID-virtualization path of the
    // paper's §4.3.  Pop heap entries until one still describes a
    // bound activation; recency stamps are unique, so the first
    // fresh entry is the oldest bound activation.
    nsrf_assert(boundCount_ > 1,
                "CID space too small for the running set; raise "
                "SimConfig::cidCapacity above 1");
    CtxHandle victim = invalidHandle;
    while (true) {
        nsrf_assert(!lruHeap_.empty(),
                    "recency heap lost a bound activation");
        auto [last_use, handle] = lruHeap_.front();
        std::pop_heap(lruHeap_.begin(), lruHeap_.end(),
                      std::greater<>{});
        lruHeap_.pop_back();
        auto it = handles_.find(handle);
        if (it != handles_.end() &&
            it->second.cid != invalidContext &&
            it->second.lastUse == last_use) {
            victim = handle;
            break;
        }
    }

    HandleState &state = handles_[victim];
    --boundCount_;
    ContextId cid = state.cid;
    nsrf_trace_hook(emit(trace::Kind::CidSteal, cid,
                         static_cast<std::uint32_t>(victim),
                         static_cast<std::uint32_t>(victim >> 32)));
    auto res = rf_->flushContext(cid);
    cycles += res.stall;
    state.cid = invalidContext; // parked; values live in the frame
    cidToHandle_.erase(cid);
    ++cidEvictions_;
    return cid;
}

ContextId
TraceSimulator::createContext(CtxHandle handle, Cycles &cycles)
{
    ContextId cid = cids_.alloc();
    if (cid == invalidContext) {
        cid = stealCid(cycles);
        cids_.free(cid);
        cid = cids_.alloc();
    }
    HandleState state;
    state.cid = cid;
    state.frame = frames_.alloc();
    state.lastUse = ++useClock_;
    rf_->allocContext(cid, state.frame);
    auto [it, fresh] = handles_.emplace(handle, state);
    nsrf_assert(fresh, "context handle %llu reused while live",
                static_cast<unsigned long long>(handle));
    (void)it;
    cidToHandle_[cid] = handle;
    ++boundCount_;
    noteUse(handle, state.lastUse);
    return cid;
}

ContextId
TraceSimulator::mapContext(CtxHandle handle, Cycles &cycles)
{
    auto it = handles_.find(handle);
    nsrf_assert(it != handles_.end(),
                "trace refers to unmapped context handle %llu",
                static_cast<unsigned long long>(handle));
    HandleState &state = it->second;
    state.lastUse = ++useClock_;

    if (state.cid == invalidContext) {
        // Parked: rebind to a (possibly stolen) hardware CID.  Its
        // registers reload on demand from the preserved frame.
        ContextId cid = cids_.alloc();
        if (cid == invalidContext) {
            cid = stealCid(cycles);
            cids_.free(cid);
            cid = cids_.alloc();
        }
        state.cid = cid;
        rf_->restoreContext(cid, state.frame);
        cidToHandle_[cid] = handle;
        ++boundCount_;
    }
    noteUse(handle, state.lastUse);
    return state.cid;
}

void
TraceSimulator::unmapContext(CtxHandle handle)
{
    auto it = handles_.find(handle);
    nsrf_assert(it != handles_.end(),
                "trace frees unmapped context handle %llu",
                static_cast<unsigned long long>(handle));
    HandleState &state = it->second;
    if (state.cid != invalidContext) {
        rf_->freeContext(state.cid);
        cidToHandle_.erase(state.cid);
        cids_.free(state.cid);
        --boundCount_;
    }
    frames_.free(state.frame);
    handles_.erase(it);
}

TraceSimulator::StepFn
TraceSimulator::resolveStepFn() const
{
    // One type test up front buys a devirtualized event loop for the
    // dominant organization; everything else runs through the base
    // interface unchanged.
    using regfile::MissPolicy;
    using regfile::WritePolicy;
    if (auto *nsf = dynamic_cast<regfile::NamedStateRegisterFile *>(
            rf_.get())) {
        // One-register lines are the paper's headline organization
        // and the hot one in the benches; dispatch once on the
        // policy pair so the access kernels inline into the loop.
        if (nsf->config().regsPerLine == 1) {
            const bool fow = nsf->config().writePolicy ==
                             WritePolicy::FetchOnWrite;
            switch (nsf->config().missPolicy) {
              case MissPolicy::ReloadSingle:
                return fow ? &TraceSimulator::stepOneWord<
                                 MissPolicy::ReloadSingle,
                                 WritePolicy::FetchOnWrite>
                           : &TraceSimulator::stepOneWord<
                                 MissPolicy::ReloadSingle,
                                 WritePolicy::WriteAllocate>;
              case MissPolicy::ReloadLive:
                return fow ? &TraceSimulator::stepOneWord<
                                 MissPolicy::ReloadLive,
                                 WritePolicy::FetchOnWrite>
                           : &TraceSimulator::stepOneWord<
                                 MissPolicy::ReloadLive,
                                 WritePolicy::WriteAllocate>;
              case MissPolicy::ReloadLine:
                return fow ? &TraceSimulator::stepOneWord<
                                 MissPolicy::ReloadLine,
                                 WritePolicy::FetchOnWrite>
                           : &TraceSimulator::stepOneWord<
                                 MissPolicy::ReloadLine,
                                 WritePolicy::WriteAllocate>;
            }
        }
        return &TraceSimulator::stepNsf;
    }
    return &TraceSimulator::stepGeneric;
}

void
TraceSimulator::beginRun()
{
    nsrf_assert(!running_, "beginRun() while a run is in progress");
    loop_ = LoopState{};
    running_ = true;
}

bool
TraceSimulator::stepRun(const TraceEvent *events, std::size_t count)
{
    nsrf_assert(running_, "stepRun() outside beginRun()/finishRun()");
    if (!loop_.done && count > 0)
        (this->*stepFn_)(loop_, events, count);
    return !loop_.done;
}

RunResult
TraceSimulator::run(TraceGenerator &gen)
{
    beginRun();
    // Pull events in batches: one virtual fill() per batch instead
    // of one next() per event, and the generator's emit path stays
    // in its own loop.  Over-pulling past an early break is safe —
    // generators are reset before reuse, and unconsumed events
    // never touch the model.
    constexpr std::size_t batch_capacity = 512;
    TraceEvent batch[batch_capacity];
    for (;;) {
        std::size_t n = gen.fill(batch, batch_capacity);
        if (n == 0)
            break;
        if (!stepRun(batch, n))
            break;
    }
    return finishRun();
}

template <regfile::MissPolicy MP, regfile::WritePolicy WP>
void
TraceSimulator::stepOneWord(LoopState &state,
                            const TraceEvent *events,
                            std::size_t count)
{
    auto &nsf =
        static_cast<regfile::NamedStateRegisterFile &>(*rf_);
    regfile::NamedStateRegisterFile::OneWordKernels<MP, WP> view(
        nsf);
    stepChunk(state, events, count, view);
}

void
TraceSimulator::stepNsf(LoopState &state, const TraceEvent *events,
                        std::size_t count)
{
    stepChunk(state, events, count,
              static_cast<regfile::NamedStateRegisterFile &>(*rf_));
}

void
TraceSimulator::stepGeneric(LoopState &state,
                            const TraceEvent *events,
                            std::size_t count)
{
    stepChunk(state, events, count, *rf_);
}

template <typename RF>
#if defined(__GNUC__)
// Pull the access kernels (and the other small per-event callees)
// into the loop body: they are each called tens of millions of
// times from exactly this loop, and the compiler's size heuristics
// otherwise leave them as calls.
__attribute__((flatten))
#endif
void
TraceSimulator::stepChunk(LoopState &state, const TraceEvent *events,
                          std::size_t count, RF &rf)
{
    std::uint64_t instructions = state.instructions;
    Cycles cycles = state.cycles;
    ContextId current = state.current;
    CtxHandle current_handle = state.currentHandle;
    Word scratch = state.scratch;

    // Hoist loop-invariant config loads: nothing in the loop body
    // mutates config_, but the compiler cannot prove the register
    // file calls don't alias it.
    // 0 means "no cap"; saturate so the loop tests one compare.
    const std::uint64_t max_instructions =
        config_.maxInstructions ? config_.maxInstructions
                                : ~std::uint64_t{0};
    const bool model_data_traffic = config_.modelDataTraffic;
    const auto mem_ref_extra = config_.memRefExtra;

    std::size_t n = 0;
    for (; n < count; ++n) {
        const TraceEvent &ev = events[n];
        if (ev.kind == EventKind::End) {
            state.done = true;
            state.sawEnd = true;
            break;
        }
        if (instructions >= max_instructions) {
            state.done = true;
            break;
        }
        // Timestamp trace events with the simulated cycle count so
        // the exported timeline lines up with the model's time base.
        nsrf_trace_hook(setTime(cycles));

        // Hint the next event's first register probe while this one
        // executes.  The hint may name a stale context when this
        // event switches — harmless, it is only a cache touch; a
        // dropped or wasted hint cannot change any result.
        if (n + 1 < count && current != invalidContext) {
            const TraceEvent &nx = events[n + 1];
            if (nx.kind == EventKind::Instr) {
                if (nx.srcCount > 0)
                    rf.prefetchHint(current, nx.src[0]);
                else if (nx.hasDst)
                    rf.prefetchHint(current, nx.dst);
            }
        }

        switch (ev.kind) {
          case EventKind::Instr: {
              nsrf_assert(current != invalidContext,
                          "instruction with no current context");
              ++instructions;
              cycles += 1;
              if (ev.memRef) {
                  cycles += model_data_traffic ? dataAccess()
                                               : mem_ref_extra;
              }
              for (std::uint8_t i = 0; i < ev.srcCount; ++i) {
                  auto res = rf.read(current, ev.src[i], scratch);
                  cycles += res.stall;
              }
              if (ev.hasDst) {
                  auto res = rf.write(current, ev.dst, scratch + 1);
                  cycles += res.stall;
              }
              break;
          }

          case EventKind::Call: {
              ++instructions;
              cycles += 1;
              ContextId callee = createContext(ev.ctx, cycles);
              auto res = rf.switchTo(callee);
              cycles += res.stall;
              current = callee;
              current_handle = ev.ctx;
              break;
          }

          case EventKind::Return: {
              ++instructions;
              cycles += 1;
              nsrf_assert(current != invalidContext,
                          "return with no current context");
              // Free the returning activation, then resume the
              // caller.
              nsrf_assert(current_handle != invalidHandle,
                          "current context has no handle");
              unmapContext(current_handle);
              ContextId caller = mapContext(ev.ctx, cycles);
              auto res = rf.switchTo(caller);
              cycles += res.stall;
              current = caller;
              current_handle = ev.ctx;
              break;
          }

          case EventKind::Spawn:
            ++instructions;
            cycles += 1;
            createContext(ev.ctx, cycles);
            break;

          case EventKind::Terminate:
            ++instructions;
            cycles += 1;
            nsrf_assert(!handles_.count(ev.ctx) ||
                            handles_[ev.ctx].cid != current,
                        "terminating the current context");
            unmapContext(ev.ctx);
            break;

          case EventKind::Switch: {
              ++instructions;
              cycles += 1;
              ContextId target = mapContext(ev.ctx, cycles);
              auto res = rf.switchTo(target);
              cycles += res.stall;
              current = target;
              current_handle = ev.ctx;
              break;
          }

          case EventKind::FreeReg:
            nsrf_assert(current != invalidContext,
                        "freereg with no current context");
            ++instructions;
            cycles += 1;
            rf.freeRegister(current, ev.dst);
            break;

          case EventKind::End:
            break;
        }
    }

    state.instructions = instructions;
    state.cycles = cycles;
    state.current = current;
    state.currentHandle = current_handle;
    state.scratch = scratch;
    // All three exits leave n at the count of fully processed
    // events: a break at index n means event n was *not* applied
    // and must be re-delivered on a snapshot resume.
    state.eventsConsumed += n;
}

void
TraceSimulator::prefetchFor(const TraceEvent *events,
                            std::size_t count) const
{
    if (loop_.done || loop_.current == invalidContext)
        return;
    // A handful of leading events covers the window a hint can help
    // with; past that the hardware prefetcher (or the chunk's own
    // in-loop next-event hints) takes over.
    std::size_t limit = count < 4 ? count : 4;
    for (std::size_t i = 0; i < limit; ++i) {
        const TraceEvent &ev = events[i];
        if (ev.kind != EventKind::Instr)
            break;
        for (std::uint8_t s = 0; s < ev.srcCount; ++s)
            rf_->prefetchHint(loop_.current, ev.src[s]);
        if (ev.hasDst)
            rf_->prefetchHint(loop_.current, ev.dst);
    }
}

void
TraceSimulator::setInstructionCap(std::uint64_t cap)
{
    config_.maxInstructions = cap;
    // stepChunk re-hoists the cap each chunk, so mid-run changes
    // take effect at the next stepRun(); only `done` needs
    // recomputing here (the run may already meet the new cap, or a
    // raise may revive a capped-out run — never one that saw End).
    if (running_) {
        const std::uint64_t max = cap ? cap : ~std::uint64_t{0};
        loop_.done = loop_.sawEnd || loop_.instructions >= max;
    }
}

RunResult
TraceSimulator::finishRun()
{
    nsrf_assert(running_, "finishRun() without beginRun()");
    running_ = false;
    rf_->finalize();

    const auto &stats = rf_->stats();
    RunResult out;
    out.regfileDescription = rf_->describe();
    out.instructions = loop_.instructions;
    out.contextSwitches = stats.contextSwitches.value();
    out.cycles = loop_.cycles;
    out.regStallCycles = stats.stallCycles;
    out.regsSpilled = stats.regsSpilled.value();
    out.regsReloaded = stats.regsReloaded.value();
    out.liveRegsReloaded = stats.liveRegsReloaded.value();
    out.readMisses = stats.readMisses.value();
    out.writeMisses = stats.writeMisses.value();
    out.cidEvictions = cidEvictions_;
    out.meanActiveRegs = stats.activeRegs.mean();
    out.maxActiveRegs = stats.activeRegs.max();
    out.meanResidentContexts = stats.residentContexts.mean();
    out.meanUtilization = rf_->meanUtilization();
    out.maxUtilization = rf_->maxUtilization();
    return out;
}

RunResult
runTrace(const SimConfig &config, TraceGenerator &gen)
{
    TraceSimulator simulator(config);
    return simulator.run(gen);
}

} // namespace nsrf::sim
