#include "nsrf/runtime/allocators.hh"

#include "nsrf/common/logging.hh"

namespace nsrf::runtime
{

CidAllocator::CidAllocator(ContextId capacity)
    : capacity_(capacity), live_(capacity, false)
{
    nsrf_assert(capacity > 0, "CID space must be non-empty");
}

ContextId
CidAllocator::alloc()
{
    ContextId cid;
    if (!freeList_.empty()) {
        cid = freeList_.back();
        freeList_.pop_back();
    } else if (next_ < capacity_) {
        cid = next_++;
    } else {
        return invalidContext;
    }
    live_[cid] = true;
    ++inUse_;
    return cid;
}

void
CidAllocator::free(ContextId cid)
{
    nsrf_assert(cid < capacity_ && live_[cid],
                "freeing CID %u that is not live", cid);
    live_[cid] = false;
    --inUse_;
    freeList_.push_back(cid);
}

FrameAllocator::FrameAllocator(Addr base, Addr frame_bytes)
    : base_(base), frameBytes_(frame_bytes), next_(base)
{
    nsrf_assert(frame_bytes > 0 && frame_bytes % wordBytes == 0,
                "frame size must be a word multiple");
}

Addr
FrameAllocator::alloc()
{
    Addr frame;
    if (!freeList_.empty()) {
        frame = freeList_.back();
        freeList_.pop_back();
    } else {
        frame = next_;
        next_ += frameBytes_;
    }
    ++inUse_;
    return frame;
}

void
FrameAllocator::free(Addr frame)
{
    nsrf_assert(frame >= base_ && (frame - base_) % frameBytes_ == 0,
                "freeing a bad frame address 0x%08x", frame);
    --inUse_;
    freeList_.push_back(frame);
}

} // namespace nsrf::runtime
