#include "nsrf/runtime/scheduler.hh"

#include <algorithm>

#include "nsrf/common/logging.hh"

namespace nsrf::runtime
{

Thread &
Scheduler::create(Addr pc, ContextId cid)
{
    auto thread = std::make_unique<Thread>();
    thread->tid = static_cast<unsigned>(threads_.size());
    thread->cid = cid;
    thread->pc = pc;
    thread->state = ThreadState::Ready;
    Thread &ref = *thread;
    threads_.push_back(std::move(thread));
    ready_.push_back(ref.tid);
    ++live_;
    ++stats_.spawned;
    return ref;
}

Thread &
Scheduler::thread(unsigned tid)
{
    nsrf_assert(tid < threads_.size(), "bad tid %u", tid);
    return *threads_[tid];
}

Thread *
Scheduler::pickNext(Cycles &now)
{
    for (;;) {
        if (!ready_.empty()) {
            unsigned tid = ready_.front();
            ready_.pop_front();
            Thread &t = *threads_[tid];
            nsrf_assert(t.state == ThreadState::Ready,
                        "tid %u on ready queue in state %d", tid,
                        static_cast<int>(t.state));
            t.state = ThreadState::Running;
            if (current_ != &t)
                ++stats_.switches;
            current_ = &t;
            return current_;
        }

        // No thread ready: wake the earliest time-blocked thread.
        Cycles earliest = 0;
        bool found = false;
        for (const auto &t : threads_) {
            if (t->state == ThreadState::Blocked &&
                t->waitAddr == invalidAddr) {
                if (!found || t->wakeAt < earliest) {
                    earliest = t->wakeAt;
                    found = true;
                }
            }
        }
        if (!found) {
            // Only sync-blocked (deadlock) or all done.
            current_ = nullptr;
            return nullptr;
        }

        if (earliest > now) {
            stats_.idleCycles += earliest - now;
            now = earliest;
        }
        for (const auto &t : threads_) {
            if (t->state == ThreadState::Blocked &&
                t->waitAddr == invalidAddr && t->wakeAt <= now) {
                t->state = ThreadState::Ready;
                ready_.push_back(t->tid);
            }
        }
    }
}

void
Scheduler::yield()
{
    nsrf_assert(current_, "yield with no running thread");
    current_->state = ThreadState::Ready;
    ready_.push_back(current_->tid);
    current_ = nullptr;
}

void
Scheduler::blockUntil(Cycles wake_at)
{
    nsrf_assert(current_, "block with no running thread");
    current_->state = ThreadState::Blocked;
    current_->wakeAt = wake_at;
    current_->waitAddr = invalidAddr;
    current_ = nullptr;
    ++stats_.remoteBlocks;
}

void
Scheduler::blockOnSync(Addr addr)
{
    nsrf_assert(current_, "block with no running thread");
    current_->state = ThreadState::Blocked;
    current_->waitAddr = addr;
    syncVars_[addr].waiters.push_back(current_->tid);
    current_ = nullptr;
    ++stats_.syncBlocks;
}

bool
Scheduler::trySyncWait(Addr addr)
{
    SyncVar &sv = syncVars_[addr];
    if (sv.banked > 0) {
        --sv.banked;
        return true;
    }
    return false;
}

void
Scheduler::signalSync(Addr addr)
{
    SyncVar &sv = syncVars_[addr];
    if (!sv.waiters.empty()) {
        unsigned tid = sv.waiters.front();
        sv.waiters.pop_front();
        Thread &t = *threads_[tid];
        nsrf_assert(t.state == ThreadState::Blocked &&
                        t.waitAddr == addr,
                    "woken thread %u was not waiting on 0x%08x", tid,
                    addr);
        t.state = ThreadState::Ready;
        t.waitAddr = invalidAddr;
        ready_.push_back(tid);
    } else {
        ++sv.banked;
    }
}

void
Scheduler::exitCurrent()
{
    nsrf_assert(current_, "exit with no running thread");
    current_->state = ThreadState::Done;
    current_ = nullptr;
    --live_;
    ++stats_.exited;
}

bool
Scheduler::anySyncBlocked() const
{
    return std::any_of(threads_.begin(), threads_.end(),
                       [](const auto &t) {
                           return t->state == ThreadState::Blocked &&
                                  t->waitAddr != invalidAddr;
                       });
}

} // namespace nsrf::runtime
