/**
 * @file
 * Run-time allocators for Context IDs and backing frames.
 *
 * Context IDs are a small hardware name space (paper §4.2): the
 * allocator recycles freed IDs.  Backing frames are fixed-size
 * activation records carved from a dedicated region of the virtual
 * address space; the Ctable maps a CID to its frame (paper §4.3).
 */

#ifndef NSRF_RUNTIME_ALLOCATORS_HH
#define NSRF_RUNTIME_ALLOCATORS_HH

#include <vector>

#include "nsrf/common/types.hh"

namespace nsrf::snapshot
{
struct SnapshotAccess;
} // namespace nsrf::snapshot

namespace nsrf::runtime
{

/** Recycling allocator over the hardware Context ID space. */
class CidAllocator
{
    friend struct ::nsrf::snapshot::SnapshotAccess;

  public:
    /** @param capacity number of distinct CIDs the hardware names */
    explicit CidAllocator(ContextId capacity = 1024);

    /**
     * @return a free CID, or invalidContext when the name space is
     * exhausted (the caller must then wait for an activation to
     * finish, exactly as a real runtime would).
     */
    ContextId alloc();

    /** Return @p cid to the free pool. */
    void free(ContextId cid);

    /** @return number of live CIDs. */
    std::size_t inUse() const { return inUse_; }

    /** @return capacity of the name space. */
    ContextId capacity() const { return capacity_; }

  private:
    ContextId capacity_;
    ContextId next_ = 0;          //!< high-water mark
    std::vector<ContextId> freeList_;
    std::vector<bool> live_;
    std::size_t inUse_ = 0;
};

/** Fixed-size frame allocator for context backing stores. */
class FrameAllocator
{
    friend struct ::nsrf::snapshot::SnapshotAccess;

  public:
    /**
     * @param base        first byte of the frame region
     * @param frame_bytes bytes per frame (word multiple)
     */
    explicit FrameAllocator(Addr base = 0x80000000u,
                            Addr frame_bytes = 128);

    /** @return the base address of a fresh frame. */
    Addr alloc();

    /** Return @p frame to the free pool. */
    void free(Addr frame);

    /** @return number of live frames. */
    std::size_t inUse() const { return inUse_; }

    Addr frameBytes() const { return frameBytes_; }

  private:
    Addr base_;
    Addr frameBytes_;
    Addr next_;
    std::vector<Addr> freeList_;
    std::size_t inUse_ = 0;
};

} // namespace nsrf::runtime

#endif // NSRF_RUNTIME_ALLOCATORS_HH
