/**
 * @file
 * Threads, synchronization variables, and the block-multithreading
 * scheduler (paper §3).
 *
 * The processor runs one thread until it blocks on a remote access
 * or a synchronization point, exits, or yields; the scheduler then
 * hands over the next ready thread (Figure 1 of the paper).  Remote
 * accesses block for a fixed network round trip; synchronization
 * variables are counting semaphores keyed by virtual address.
 */

#ifndef NSRF_RUNTIME_SCHEDULER_HH
#define NSRF_RUNTIME_SCHEDULER_HH

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "nsrf/common/types.hh"
#include "nsrf/stats/counters.hh"

namespace nsrf::runtime
{

/** Life-cycle state of a thread. */
enum class ThreadState { Ready, Running, Blocked, Done };

/** One thread of control. */
struct Thread
{
    unsigned tid = 0;
    ContextId cid = invalidContext;
    Addr pc = 0;
    ThreadState state = ThreadState::Ready;
    /** When Blocked on time (remote access): wake-up cycle. */
    Cycles wakeAt = 0;
    /** When Blocked on a sync variable: its address. */
    Addr waitAddr = invalidAddr;
};

/** Scheduler statistics. */
struct SchedulerStats
{
    stats::Counter spawned;
    stats::Counter exited;
    stats::Counter switches;     //!< thread-to-thread handoffs
    stats::Counter remoteBlocks;
    stats::Counter syncBlocks;
    Cycles idleCycles = 0;       //!< no thread was runnable
};

/** FIFO block-multithreading scheduler. */
class Scheduler
{
  public:
    Scheduler() = default;

    /** Create a thread; it joins the back of the ready queue. */
    Thread &create(Addr pc, ContextId cid);

    /** @return the running thread, or nullptr. */
    Thread *current() { return current_; }

    /**
     * Pick the next thread.  If no thread is ready but some are
     * blocked on time, advances @p now to the earliest wake-up and
     * accounts the gap as idle.  @return nullptr when no thread can
     * ever run again (all done, or deadlocked on sync variables).
     */
    Thread *pickNext(Cycles &now);

    /** Move the running thread to the back of the ready queue. */
    void yield();

    /** Block the running thread until cycle @p wake_at. */
    void blockUntil(Cycles wake_at);

    /** Block the running thread on sync variable @p addr. */
    void blockOnSync(Addr addr);

    /**
     * Signal sync variable @p addr: wakes the oldest waiter, or
     * banks the signal for a future waiter.
     */
    void signalSync(Addr addr);

    /**
     * @return true if a SyncWait on @p addr would consume a banked
     * signal (and consumes it).  Otherwise the caller must block.
     */
    bool trySyncWait(Addr addr);

    /** Terminate the running thread. */
    void exitCurrent();

    /** @return number of threads not yet Done. */
    std::size_t liveCount() const { return live_; }

    /** @return true when some thread is blocked on a sync var. */
    bool anySyncBlocked() const;

    const SchedulerStats &stats() const { return stats_; }

    /** @return thread by id (must exist). */
    Thread &thread(unsigned tid);

  private:
    struct SyncVar
    {
        std::uint64_t banked = 0;       //!< signals with no waiter
        std::deque<unsigned> waiters;   //!< blocked tids, FIFO
    };

    std::vector<std::unique_ptr<Thread>> threads_;
    std::deque<unsigned> ready_;
    std::unordered_map<Addr, SyncVar> syncVars_;
    Thread *current_ = nullptr;
    std::size_t live_ = 0;
    SchedulerStats stats_;
};

} // namespace nsrf::runtime

#endif // NSRF_RUNTIME_SCHEDULER_HH
