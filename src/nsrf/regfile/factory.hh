/**
 * @file
 * Construction of register files from a single experiment-level
 * description.  The simulator and every bench build their register
 * files through this factory so that an organization is always
 * described the same way.
 */

#ifndef NSRF_REGFILE_FACTORY_HH
#define NSRF_REGFILE_FACTORY_HH

#include <memory>

#include "nsrf/regfile/named_state.hh"
#include "nsrf/regfile/segmented.hh"
#include "nsrf/regfile/windowed.hh"

namespace nsrf::regfile
{

/** Everything needed to build any register file organization. */
struct RegFileConfig
{
    Organization org = Organization::NamedState;
    /** Total physical registers (80 sequential / 128 parallel in the
     * paper's §7.1 experiments). */
    unsigned totalRegs = 128;
    /** Context/frame size (20 sequential, 32 parallel). */
    unsigned regsPerContext = 32;
    /** NSF line width in registers. */
    unsigned regsPerLine = 1;
    MissPolicy missPolicy = MissPolicy::ReloadSingle;
    WritePolicy writePolicy = WritePolicy::WriteAllocate;
    cam::ReplacementKind replacement = cam::ReplacementKind::Lru;
    /** Segmented: per-register valid bits. */
    bool trackValid = false;
    /** Segmented: spill engine vs trap handler. */
    SpillMechanism mechanism = SpillMechanism::HardwareAssist;
    /** Segmented: overlap spill/reload with execution (the
     * dribble-back / background-transfer schemes of the paper's
     * §5 related work). */
    bool backgroundTransfer = false;
    /** NSF ablation: spill only dirty registers. */
    bool spillDirtyOnly = false;
    /** Windowed: windows spilled per overflow trap. */
    unsigned windowSpillBatch = 2;
    CostParams costs{};
    std::uint64_t seed = 1;

    /** @return frames for a segmented file of this size. */
    unsigned
    frames() const
    {
        return totalRegs / regsPerContext;
    }

    /** @return NSF line count for this size. */
    unsigned
    lines() const
    {
        return totalRegs / regsPerLine;
    }
};

/** Build the configured register file over @p backing. */
std::unique_ptr<RegisterFile> makeRegisterFile(
    const RegFileConfig &config, mem::MemorySystem &backing);

} // namespace nsrf::regfile

#endif // NSRF_REGFILE_FACTORY_HH
