#include "nsrf/regfile/regfile.hh"

#include "nsrf/mem/memsys.hh"

namespace nsrf::regfile
{

RegisterFile::RegisterFile(unsigned total_regs,
                           mem::MemorySystem &backing)
    : totalRegs_(total_regs), backing_(backing)
{
    nsrf_assert(total_regs > 0, "register file needs registers");
    // Occupancy starts at zero at time zero.
    stats_.activeRegs.record(0, 0.0);
    stats_.residentContexts.record(0, 0.0);
}

AccessResult
RegisterFile::freeRegister(ContextId, RegIndex)
{
    return {};
}

void
RegisterFile::finalize()
{
    stats_.activeRegs.finish(clock_);
    stats_.residentContexts.finish(clock_);
}

double
RegisterFile::meanUtilization() const
{
    return stats_.activeRegs.mean() / double(totalRegs_);
}

double
RegisterFile::maxUtilization() const
{
    return stats_.activeRegs.max() / double(totalRegs_);
}

const char *
organizationName(Organization org)
{
    switch (org) {
      case Organization::Conventional: return "conventional";
      case Organization::Segmented: return "segmented";
      case Organization::NamedState: return "nsf";
      case Organization::Windowed: return "windowed";
    }
    return "?";
}

} // namespace nsrf::regfile
