/**
 * @file
 * A SPARC-style windowed register file (the related-work baseline
 * of the paper's §5: Keppel and Hidaka run threads in the register
 * windows of a SPARC by modifying the window trap handlers).
 *
 * The file is a circular buffer of fixed windows.  Procedure calls
 * claim the next window; when none is free an *overflow trap* fires
 * and a software handler spills a batch of the oldest windows to
 * memory.  Returns that find their window spilled take an
 * *underflow trap* to reload it.  Switching to a context with no
 * resident window (a thread switch) is the expensive case the paper
 * criticizes: the handler must evict somebody and reload the whole
 * window.
 *
 * Mapped onto the common RegisterFile interface:
 *  - allocContext pushes the activation onto the window stack
 *    (overflow-trapping when the file is full);
 *  - freeContext pops it (any order is allowed, but only the
 *    LIFO discipline is cheap);
 *  - switchTo a resident context just moves the current-window
 *    pointer; a non-resident one takes an underflow trap.
 */

#ifndef NSRF_REGFILE_WINDOWED_HH
#define NSRF_REGFILE_WINDOWED_HH

#include <unordered_map>
#include <vector>

#include "nsrf/regfile/ctable.hh"
#include "nsrf/regfile/regfile.hh"

namespace nsrf::regfile
{

/** Circular-buffer register windows with trap-based spilling. */
class WindowedRegisterFile : public RegisterFile
{
  public:
    /** Configuration of a windowed file. */
    struct Config
    {
        unsigned windows = 8;        //!< number of windows
        unsigned regsPerWindow = 16; //!< registers per window
        /** Windows spilled per overflow trap (SPARC handlers spill
         * in batches to amortize the trap cost). */
        unsigned spillBatch = 2;
        /** Trap entry + dispatch + return (software handler). */
        Cycles trapOverhead = 30;
        /** Handler cycles per register moved beyond the access. */
        Cycles perRegExtra = 2;
    };

    WindowedRegisterFile(const Config &config,
                         mem::MemorySystem &backing);

    AccessResult read(ContextId cid, RegIndex off,
                      Word &value) override;
    AccessResult write(ContextId cid, RegIndex off,
                       Word value) override;
    AccessResult switchTo(ContextId cid) override;
    void allocContext(ContextId cid, Addr backing_frame) override;
    void freeContext(ContextId cid) override;
    AccessResult flushContext(ContextId cid) override;
    void restoreContext(ContextId cid, Addr backing_frame) override;
    std::string describe() const override;

    const Config &config() const { return config_; }

    /** @return true when @p cid currently owns a window. */
    bool resident(ContextId cid) const;

    /** @return overflow traps taken so far. */
    std::uint64_t overflowTraps() const { return overflows_; }

    /** @return underflow traps taken so far. */
    std::uint64_t underflowTraps() const { return underflows_; }

  private:
    friend struct ::nsrf::snapshot::SnapshotAccess;
    struct Window
    {
        bool inUse = false;
        ContextId cid = invalidContext;
        std::vector<Word> regs;
    };

    struct ContextState
    {
        std::vector<bool> live;
        unsigned liveCount = 0;
        bool everSpilled = false;
        /** Position in the activation order (stack depth). */
        std::uint64_t order = 0;
    };

    ContextState &state(ContextId cid);

    /** Spill the oldest resident windows (overflow handler). */
    void overflowSpill(AccessResult &res);

    /** Spill one specific window. */
    void spillWindow(std::size_t w, AccessResult &res);

    /** Load @p cid into free window @p w (reloading if needed). */
    void loadWindow(std::size_t w, ContextId cid,
                    AccessResult &res);

    /** Find a free window, trapping to make room if necessary. */
    std::size_t acquireWindow(AccessResult &res);

    /** Bring @p cid's window back (underflow / thread switch). */
    void ensureResident(ContextId cid, AccessResult &res);

    void updateOccupancy();

    Config config_;
    std::vector<Window> windows_;
    Ctable ctable_;
    std::unordered_map<ContextId, ContextState> contexts_;
    std::unordered_map<ContextId, std::size_t> residentWindow_;
    std::uint64_t nextOrder_ = 0;
    std::uint64_t overflows_ = 0;
    std::uint64_t underflows_ = 0;
    std::size_t activeCount_ = 0;
};

} // namespace nsrf::regfile

#endif // NSRF_REGFILE_WINDOWED_HH
