#include "nsrf/regfile/statsdump.hh"

namespace nsrf::regfile
{

namespace
{

void
line(std::string &out, const std::string &prefix, const char *name,
     double value, const char *comment)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%-40s %20.6f  # %s\n",
                  (prefix + "." + name).c_str(), value, comment);
    out += buf;
}

void
line(std::string &out, const std::string &prefix, const char *name,
     std::uint64_t value, const char *comment)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%-40s %20llu  # %s\n",
                  (prefix + "." + name).c_str(),
                  static_cast<unsigned long long>(value), comment);
    out += buf;
}

} // namespace

std::string
statsToString(const RegisterFile &rf, const std::string &prefix)
{
    const RegFileStats &s = rf.stats();
    std::string out;
    out += "---------- " + rf.describe() + " ----------\n";

    line(out, prefix, "reads", s.reads.value(),
         "register read operations");
    line(out, prefix, "writes", s.writes.value(),
         "register write operations");
    line(out, prefix, "readMisses", s.readMisses.value(),
         "reads that missed in the file");
    line(out, prefix, "writeMisses", s.writeMisses.value(),
         "writes that missed in the file");
    line(out, prefix, "contextSwitches",
         s.contextSwitches.value(), "switchTo operations");
    line(out, prefix, "switchMisses", s.switchMisses.value(),
         "switches to non-resident contexts");
    line(out, prefix, "regsSpilled", s.regsSpilled.value(),
         "registers written to backing store");
    line(out, prefix, "regsReloaded", s.regsReloaded.value(),
         "registers read from backing store");
    line(out, prefix, "liveRegsSpilled",
         s.liveRegsSpilled.value(),
         "...of spills, holding live data");
    line(out, prefix, "liveRegsReloaded",
         s.liveRegsReloaded.value(),
         "...of reloads, holding live data");
    line(out, prefix, "lineAllocs", s.lineAllocs.value(),
         "lines/frames allocated");
    line(out, prefix, "lineEvictions", s.lineEvictions.value(),
         "lines/frames evicted");
    line(out, prefix, "stallCycles", s.stallCycles,
         "pipeline stall cycles charged");
    line(out, prefix, "activeRegs.mean", s.activeRegs.mean(),
         "time-weighted live registers resident");
    line(out, prefix, "activeRegs.max", s.activeRegs.max(),
         "peak live registers resident");
    line(out, prefix, "residentContexts.mean",
         s.residentContexts.mean(),
         "time-weighted resident contexts");
    line(out, prefix, "utilization.mean", rf.meanUtilization(),
         "activeRegs.mean / totalRegs");
    line(out, prefix, "utilization.max", rf.maxUtilization(),
         "activeRegs.max / totalRegs");
    return out;
}

void
dumpStats(const RegisterFile &rf, std::FILE *out,
          const std::string &prefix)
{
    std::string text = statsToString(rf, prefix);
    std::fwrite(text.data(), 1, text.size(), out);
}

} // namespace nsrf::regfile
