#include "nsrf/regfile/named_state.hh"

#include <algorithm>

#include "nsrf/common/audit.hh"
#include "nsrf/common/logging.hh"
#include "nsrf/mem/memsys.hh"
#include "nsrf/trace/hooks.hh"

namespace nsrf::regfile
{

NamedStateRegisterFile::NamedStateRegisterFile(
    const Config &config, mem::MemorySystem &backing)
    : RegisterFile(config.lines * config.regsPerLine, backing),
      config_(config), decoder_(config.lines),
      repl_(config.lines, config.replacement, config.seed)
{
    nsrf_assert(config.regsPerLine > 0,
                "NSF lines must hold at least one register");
    nsrf_assert(config.maxRegsPerContext > 0,
                "contexts need at least one register");
    array_.assign(config.lines * config.regsPerLine, 0);
    meta_.assign(array_.size(), 0);
    lineScratch_.reserve(config.lines);
    selectKernels();
}

void
NamedStateRegisterFile::selectKernels()
{
    switch (config_.missPolicy) {
      case MissPolicy::ReloadSingle:
        bindKernels<MissPolicy::ReloadSingle>();
        break;
      case MissPolicy::ReloadLive:
        bindKernels<MissPolicy::ReloadLive>();
        break;
      case MissPolicy::ReloadLine:
        bindKernels<MissPolicy::ReloadLine>();
        break;
    }
    nsrf_assert(readKernel_ && writeKernel_,
                "no access kernel for this policy combination");
}

template <MissPolicy MP>
void
NamedStateRegisterFile::bindKernels()
{
    if (config_.regsPerLine == 1)
        bindKernels2<MP, true>();
    else
        bindKernels2<MP, false>();
}

template <MissPolicy MP, bool OneWord>
void
NamedStateRegisterFile::bindKernels2()
{
    readKernel_ = &NamedStateRegisterFile::readImpl<MP, OneWord>;
    if (config_.writePolicy == WritePolicy::FetchOnWrite) {
        writeKernel_ = &NamedStateRegisterFile::writeImpl<
            MP, WritePolicy::FetchOnWrite, OneWord>;
    } else {
        writeKernel_ = &NamedStateRegisterFile::writeImpl<
            MP, WritePolicy::WriteAllocate, OneWord>;
    }
}

void
NamedStateRegisterFile::allocContext(ContextId cid, Addr backing_frame)
{
    nsrf_assert(contexts_.find(cid) == contexts_.end(),
                "context %u is already allocated", cid);
    ContextState fresh;
    fresh.validInMem.assign(config_.maxRegsPerContext, false);
    contexts_.emplace(cid, std::move(fresh));
    ctable_.set(cid, backing_frame);
    nsrf_trace_hook(emit(trace::Kind::CtxCreate, cid, backing_frame));
    nsrf_audit_hook(auditInvariants(&nsrf_audit_why_));
}

void
NamedStateRegisterFile::freeContext(ContextId cid)
{
    auto it = contexts_.find(cid);
    nsrf_assert(it != contexts_.end(),
                "freeing unallocated context %u", cid);

    // Bulk-deallocate every resident line — no writeback, the data
    // is dead (paper §4.2).
    decoder_.invalidateContext(cid, lineScratch_);
    for (std::size_t line : lineScratch_) {
        for (unsigned w = 0; w < config_.regsPerLine; ++w) {
            std::size_t slot = line * config_.regsPerLine + w;
            if (slotValid(slot))
                --activeCount_;
            nsrf_trace_stmt(if (slotDirty(slot)) --traceDirtyWords_;)
            meta_[slot] = 0;
        }
        repl_.release(line);
    }
    nsrf_trace_hook(emit(trace::Kind::CtxDestroy, cid));
    if (it->second.residentLines > 0)
        --residentCtxCount_;
    contexts_.erase(it);
    ctable_.clear(cid);
    if (current_ == cid)
        current_ = invalidContext;
    updateOccupancy();
}

AccessResult
NamedStateRegisterFile::flushContext(ContextId cid)
{
    tick();
    AccessResult res;
    // Spill every resident line of the context, then release its
    // name; the backing frame now holds the full architectural
    // state and the CID is free for reuse.
    lineScratch_.clear();
    decoder_.forEachContextLine(
        cid, [&](std::size_t line) { lineScratch_.push_back(line); });
    // The chain yields lines in programming order; evict in
    // ascending line order to match the historical full-scan walk
    // bit for bit.
    std::sort(lineScratch_.begin(), lineScratch_.end());
    for (std::size_t line : lineScratch_)
        evictLine(line, res);
    nsrf_trace_hook(emit(trace::Kind::CtxFlush, cid));
    contexts_.erase(cid);
    ctable_.clear(cid);
    if (current_ == cid)
        current_ = invalidContext;
    stats_.stallCycles += res.stall;
    updateOccupancy();
    return res;
}

void
NamedStateRegisterFile::restoreContext(ContextId cid,
                                       Addr backing_frame)
{
    allocContext(cid, backing_frame);
    // The frame holds the activation's full state; demand misses
    // must treat every offset as live in memory.
    auto &ctx = contexts_.at(cid);
    std::fill(ctx.validInMem.begin(), ctx.validInMem.end(), true);
    nsrf_trace_hook(emit(trace::Kind::CtxRestore, cid,
                         backing_frame));
    nsrf_audit_hook(auditInvariants(&nsrf_audit_why_));
}

bool
NamedStateRegisterFile::residentValid(ContextId cid,
                                      RegIndex off) const
{
    std::size_t line = decoder_.peek(cid, off - off %
                                              config_.regsPerLine);
    if (line == cam::AssociativeDecoder::npos)
        return false;
    return slotValid(line * config_.regsPerLine +
                     off % config_.regsPerLine);
}

unsigned
NamedStateRegisterFile::residentLines(ContextId cid) const
{
    auto it = contexts_.find(cid);
    return it == contexts_.end() ? 0 : it->second.residentLines;
}

std::size_t
NamedStateRegisterFile::allocateLine(ContextId cid,
                                     RegIndex line_off,
                                     AccessResult &res)
{
    std::size_t line = decoder_.findFree();
    if (line == cam::AssociativeDecoder::npos) {
        line = repl_.victim();
        evictLine(line, res);
    }

    decoder_.program(line, cid, line_off);
    repl_.insert(line);
    ++stats_.lineAllocs;
    nsrf_trace_hook(emit(trace::Kind::LineAlloc, cid,
                         static_cast<std::uint32_t>(line),
                         line_off));

    ContextState &ctx = state(cid);
    if (ctx.residentLines == 0)
        ++residentCtxCount_;
    ++ctx.residentLines;
    return line;
}

void
NamedStateRegisterFile::evictLine(std::size_t line, AccessResult &res)
{
    const cam::Tag &tag = decoder_.tag(line);
    ContextState &ctx = state(tag.cid);
    Addr base = ctable_.lookup(tag.cid);
    nsrf_trace_stmt(std::uint32_t trace_spilled = 0;)

    for (unsigned w = 0; w < config_.regsPerLine; ++w) {
        std::size_t slot = line * config_.regsPerLine + w;
        std::uint8_t m = meta_[slot];
        if (!(m & kMetaValid))
            continue;
        RegIndex off = tag.lineOffset + w;
        bool must_write =
            !config_.spillDirtyOnly || (m & kMetaDirty) != 0;
        if (must_write) {
            Cycles lat = backing_.writeWord(base + off * wordBytes,
                                            array_[slot]);
            res.stall += lat;
            ++res.spilled;
            ++stats_.regsSpilled;
            ++stats_.liveRegsSpilled;
            nsrf_trace_stmt(++trace_spilled;)
        }
        // A clean word that was not already live in memory is a dead
        // neighbour pulled in by ReloadLine/FetchOnWrite; spilling it
        // must not promote it to "live", or every future reload of it
        // would be miscounted as live traffic (Fig 10/13).
        if (m & kMetaDirty)
            ctx.validInMem[off] = true;
        nsrf_trace_stmt(if (m & kMetaDirty) --traceDirtyWords_;)
        meta_[slot] = 0;
        --activeCount_;
        --ctx.residentLiveRegs;
    }

    nsrf_trace_hook(emit(trace::Kind::LineEvict, tag.cid,
                         static_cast<std::uint32_t>(line),
                         trace_spilled));
    decoder_.invalidate(line);
    repl_.release(line);
    ++stats_.lineEvictions;
    --ctx.residentLines;
    if (ctx.residentLines == 0)
        --residentCtxCount_;
}

void
NamedStateRegisterFile::reloadWord(std::size_t line, ContextId cid,
                                   RegIndex off, AccessResult &res)
{
    ContextState &ctx = state(cid);
    Addr base = ctable_.lookup(cid);
    Word value;
    Cycles lat = backing_.readWord(base + off * wordBytes, value);
    res.stall += lat + config_.costs.nsfMissExtra;
    std::size_t slot = slotOf(line, off);
    array_[slot] = value;
    meta_[slot] &= static_cast<std::uint8_t>(~kMetaDirty);
    ++res.reloaded;
    ++stats_.regsReloaded;
    if (ctx.validInMem[off])
        ++stats_.liveRegsReloaded;
    nsrf_trace_hook(emit(trace::Kind::WordReload, cid, off,
                         ctx.validInMem[off] ? 1 : 0));
    markValid(slot, cid);
}

AccessResult
NamedStateRegisterFile::read(ContextId cid, RegIndex off, Word &value)
{
    return (this->*readKernel_)(cid, off, value);
}

AccessResult
NamedStateRegisterFile::write(ContextId cid, RegIndex off, Word value)
{
    return (this->*writeKernel_)(cid, off, value);
}

AccessResult
NamedStateRegisterFile::switchTo(ContextId cid)
{
    // The NSF neither spills nor reloads on a switch; instructions
    // from the new context simply start issuing (paper §4.2).
    tick();
    ++stats_.contextSwitches;
    nsrf_trace_hook(emit(trace::Kind::CtxSwitch, cid, current_));
    current_ = cid;
    return {};
}

AccessResult
NamedStateRegisterFile::freeRegister(ContextId cid, RegIndex off)
{
    nsrf_assert(off < config_.maxRegsPerContext,
                "offset %u exceeds context size %u", off,
                config_.maxRegsPerContext);
    tick();
    AccessResult res;
    ContextState &ctx = state(cid);
    ctx.validInMem[off] = false;
    nsrf_trace_hook(emit(trace::Kind::FreeReg, cid, off));

    RegIndex line_off = lineOffsetOf(off);
    std::size_t line = decoder_.peek(cid, line_off);
    if (line != cam::AssociativeDecoder::npos) {
        std::size_t slot = slotOf(line, off);
        if (slotValid(slot)) {
            nsrf_trace_stmt(if (slotDirty(slot)) --traceDirtyWords_;)
            meta_[slot] = 0;
            --activeCount_;
            --ctx.residentLiveRegs;
        }
        // If the whole line is now empty, free it with no traffic.
        bool any = false;
        for (unsigned w = 0; w < config_.regsPerLine; ++w)
            any = any || slotValid(line * config_.regsPerLine + w);
        if (!any) {
            decoder_.invalidate(line);
            repl_.release(line);
            --ctx.residentLines;
            if (ctx.residentLines == 0)
                --residentCtxCount_;
        }
        updateOccupancy();
    }
    return res;
}

bool
NamedStateRegisterFile::auditInvariants(std::string *why) const
{
    using auditing::fail;

    // Component self-audits first: a broken decoder or list makes
    // the cross-structure walk meaningless.
    if (!decoder_.auditInvariants(why))
        return false;
    if (!repl_.auditInvariants(why))
        return false;
    if (!ctable_.auditInvariants(why))
        return false;

    // A line is a victim candidate iff its tag is valid, and every
    // valid tag names a live, translated context.
    for (std::size_t line = 0; line < decoder_.size(); ++line) {
        if (decoder_.lineValid(line) != repl_.held(line)) {
            return fail(why,
                        "line %zu is %s in the decoder but %s in "
                        "the replacement state",
                        line,
                        decoder_.lineValid(line) ? "valid" : "free",
                        repl_.held(line) ? "held" : "free");
        }
        if (!decoder_.lineValid(line)) {
            for (unsigned w = 0; w < config_.regsPerLine; ++w) {
                std::size_t slot = line * config_.regsPerLine + w;
                if (meta_[slot] != 0) {
                    return fail(why,
                                "free line %zu holds a %s register "
                                "at word %u",
                                line,
                                slotValid(slot) ? "valid" : "dirty",
                                w);
                }
            }
            continue;
        }
        const cam::Tag &t = decoder_.tag(line);
        if (contexts_.find(t.cid) == contexts_.end()) {
            return fail(why,
                        "line %zu belongs to unallocated context %u",
                        line, t.cid);
        }
        if (!ctable_.has(t.cid)) {
            return fail(why,
                        "line %zu's context %u has no Ctable "
                        "translation",
                        line, t.cid);
        }
        if (t.lineOffset % config_.regsPerLine != 0 ||
            t.lineOffset >= config_.maxRegsPerContext) {
            return fail(why,
                        "line %zu tag offset %u is misaligned or "
                        "out of range",
                        line, t.lineOffset);
        }
    }

    // Recount registers and resident lines per context; the cached
    // occupancy counters must agree, dirty must imply valid, and a
    // clean valid register must equal its backing-store word.
    std::size_t active = 0;
    std::unordered_map<ContextId, unsigned> lines_of;
    std::unordered_map<ContextId, unsigned> regs_of;
    for (std::size_t line = 0; line < decoder_.size(); ++line) {
        if (!decoder_.lineValid(line))
            continue;
        const cam::Tag &t = decoder_.tag(line);
        ++lines_of[t.cid];
        for (unsigned w = 0; w < config_.regsPerLine; ++w) {
            std::size_t slot = line * config_.regsPerLine + w;
            // Cross-check the packed side array itself: only the
            // valid/dirty bits may ever be set in a meta byte.
            if ((meta_[slot] & ~(kMetaValid | kMetaDirty)) != 0) {
                return fail(why,
                            "line %zu word %u has stray metadata "
                            "bits 0x%02x",
                            line, w, meta_[slot]);
            }
            if (slotDirty(slot) && !slotValid(slot)) {
                return fail(why,
                            "line %zu word %u is dirty but not "
                            "valid",
                            line, w);
            }
            if (!slotValid(slot))
                continue;
            ++active;
            ++regs_of[t.cid];
            RegIndex off = t.lineOffset + w;
            if (off >= config_.maxRegsPerContext) {
                return fail(why,
                            "line %zu word %u is valid past the "
                            "context's last register",
                            line, w);
            }
            if (!slotDirty(slot)) {
                Addr addr = ctable_.lookup(t.cid) + off * wordBytes;
                Word in_mem = backing_.memory().peekWord(addr);
                if (array_[slot] != in_mem) {
                    return fail(why,
                                "clean register <%u:%u> holds 0x%08x "
                                "but its frame word holds 0x%08x "
                                "(dirty bit lost?)",
                                t.cid, off, array_[slot], in_mem);
                }
            }
        }
    }
    if (active != activeCount_) {
        return fail(why,
                    "activeCount %zu disagrees with %zu valid "
                    "registers",
                    activeCount_, active);
    }

    std::size_t resident_ctxs = 0;
    for (const auto &[cid, ctx] : contexts_) {
        unsigned lines = 0, regs = 0;
        if (auto it = lines_of.find(cid); it != lines_of.end())
            lines = it->second;
        if (auto it = regs_of.find(cid); it != regs_of.end())
            regs = it->second;
        if (ctx.residentLines != lines) {
            return fail(why,
                        "context %u caches %u resident lines but "
                        "owns %u",
                        cid, ctx.residentLines, lines);
        }
        if (ctx.residentLiveRegs != regs) {
            return fail(why,
                        "context %u caches %u resident registers "
                        "but owns %u",
                        cid, ctx.residentLiveRegs, regs);
        }
        resident_ctxs += lines > 0 ? 1 : 0;
        if (ctx.validInMem.size() != config_.maxRegsPerContext) {
            return fail(why,
                        "context %u's live-in-memory map has %zu "
                        "entries, expected %u",
                        cid, ctx.validInMem.size(),
                        config_.maxRegsPerContext);
        }
    }
    if (resident_ctxs != residentCtxCount_) {
        return fail(why,
                    "residentCtxCount %zu disagrees with %zu "
                    "contexts owning lines",
                    residentCtxCount_, resident_ctxs);
    }

    // Contexts and Ctable entries are in bijection: one translation
    // per allocated context, no stray translations, and no two
    // contexts sharing a backing frame.
    if (ctable_.mappedCount() != contexts_.size()) {
        return fail(why,
                    "Ctable maps %zu CIDs but %zu contexts are "
                    "allocated",
                    ctable_.mappedCount(), contexts_.size());
    }
    std::unordered_map<Addr, ContextId> frame_owner;
    bool frames_ok = true;
    ContextId dup_a = 0, dup_b = 0;
    ctable_.forEachMapping([&](ContextId cid, Addr frame) {
        if (contexts_.find(cid) == contexts_.end())
            frames_ok = false;
        auto [it, fresh] = frame_owner.emplace(frame, cid);
        if (!fresh) {
            frames_ok = false;
            dup_a = it->second;
            dup_b = cid;
        }
    });
    if (!frames_ok) {
        return fail(why,
                    "Ctable is not a bijection: stray translation "
                    "or contexts %u and %u share a frame",
                    dup_a, dup_b);
    }
    return true;
}

std::string
NamedStateRegisterFile::describe() const
{
    std::string out = "nsf(";
    out += std::to_string(config_.lines) + "x" +
           std::to_string(config_.regsPerLine);
    out += ",";
    out += cam::replacementName(config_.replacement);
    switch (config_.missPolicy) {
      case MissPolicy::ReloadSingle:
        out += ",single";
        break;
      case MissPolicy::ReloadLive:
        out += ",live";
        break;
      case MissPolicy::ReloadLine:
        out += ",line";
        break;
    }
    if (config_.writePolicy == WritePolicy::FetchOnWrite)
        out += ",fow";
    out += ")";
    return out;
}

} // namespace nsrf::regfile
