/**
 * @file
 * gem5-style plain-text statistics dump for register files.
 *
 * Prints every counter with a dotted hierarchical name so runs can
 * be diffed, grepped, and post-processed — the format simulator
 * users already script against.
 */

#ifndef NSRF_REGFILE_STATSDUMP_HH
#define NSRF_REGFILE_STATSDUMP_HH

#include <cstdio>
#include <string>

#include "nsrf/regfile/regfile.hh"

namespace nsrf::regfile
{

/**
 * Write @p rf's statistics to @p out, one `name value # comment`
 * line per stat, prefixed with @p prefix (e.g. "system.rf").
 */
void dumpStats(const RegisterFile &rf, std::FILE *out,
               const std::string &prefix = "rf");

/** As dumpStats, but returned as a string (for tests and logs). */
std::string statsToString(const RegisterFile &rf,
                          const std::string &prefix = "rf");

} // namespace nsrf::regfile

#endif // NSRF_REGFILE_STATSDUMP_HH
