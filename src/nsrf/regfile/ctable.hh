/**
 * @file
 * The Ctable: a short indexed table translating Context IDs to the
 * virtual addresses of their backing frames (paper §4.3, Figure 4).
 *
 * The table is hardware of fixed size; the programming model decides
 * what to put in it ("A user program or thread scheduler may use any
 * strategy for mapping register contexts to structures in memory,
 * simply by writing the translation into the Ctable").
 */

#ifndef NSRF_REGFILE_CTABLE_HH
#define NSRF_REGFILE_CTABLE_HH

#include <string>
#include <vector>

#include "nsrf/common/types.hh"

namespace nsrf::check
{
struct TestAccess;
} // namespace nsrf::check

namespace nsrf::regfile
{

/** CID -> backing-frame virtual address translation table. */
class Ctable
{
  public:
    /** @param entries hardware table size; CIDs must be < entries */
    explicit Ctable(std::size_t entries = 1024);

    /** Program the translation for @p cid. */
    void set(ContextId cid, Addr frame_base);

    /** Remove the translation for @p cid. */
    void clear(ContextId cid);

    /** @return true when @p cid has a translation. */
    bool has(ContextId cid) const;

    /**
     * @return the backing frame base for @p cid.  Looking up an
     * unmapped CID is a programming error (the hardware would spill
     * to a wild address) and panics.
     */
    Addr lookup(ContextId cid) const;

    /** @return the backing address of register <cid:off>. */
    Addr
    regAddr(ContextId cid, RegIndex off) const
    {
        return lookup(cid) + off * wordBytes;
    }

    /**
     * Pull @p cid's translation entry toward the cache.  Purely a
     * hint (no state or result changes); the pipelined lane loop
     * issues it for the next lane's context while the current lane
     * executes.
     */
    void
    prefetch(ContextId cid) const
    {
        if (cid < frames_.size())
            __builtin_prefetch(&frames_[cid]);
    }

    /** @return hardware table capacity. */
    std::size_t capacity() const { return frames_.size(); }

    /** @return number of programmed entries. */
    std::size_t mappedCount() const { return mapped_; }

    /** Call @p fn with every (cid, frame) translation. */
    template <typename Fn>
    void
    forEachMapping(Fn &&fn) const
    {
        for (std::size_t cid = 0; cid < frames_.size(); ++cid) {
            if (valid_[cid])
                fn(static_cast<ContextId>(cid), frames_[cid]);
        }
    }

    /**
     * Verify the table's internal invariants: the mapped count
     * agrees with the valid bits, every valid entry holds a real
     * frame address, and every invalid entry was scrubbed.
     *
     * @return true when every invariant holds; otherwise false with
     * the first violation described in @p why (when non-null).
     */
    bool auditInvariants(std::string *why = nullptr) const;

  private:
    friend struct ::nsrf::check::TestAccess;
    std::vector<Addr> frames_;
    std::vector<bool> valid_;
    std::size_t mapped_ = 0;
};

} // namespace nsrf::regfile

#endif // NSRF_REGFILE_CTABLE_HH
