/**
 * @file
 * The Named-State Register File (paper §4, Figure 3).
 *
 * A fully-associative register file with very small lines.  Each line
 * carries a CAM tag <Context ID : line-aligned offset> in the
 * associative decoder and a valid bit per register.  A thread's
 * registers may sit anywhere in the array; any number of contexts can
 * be resident at once.
 *
 * Operation (paper §4.2):
 *  - the first write to a register name allocates a line by
 *    programming the decoder (write-allocate), or additionally
 *    fetches the rest of the line (fetch-on-write);
 *  - a read that misses stalls and reloads on demand — a single
 *    register, the live registers of the line, or the whole line,
 *    depending on MissPolicy (the three strategies of Figure 13);
 *  - when a write needs a line and the file is full, a victim line is
 *    spilled to its context's backing frame (LRU by default);
 *  - context switches neither spill nor reload anything;
 *  - contexts and individual registers can be deallocated explicitly,
 *    freeing lines with no memory traffic.
 */

#ifndef NSRF_REGFILE_NAMED_STATE_HH
#define NSRF_REGFILE_NAMED_STATE_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "nsrf/cam/decoder.hh"
#include "nsrf/cam/replacement.hh"
#include "nsrf/regfile/ctable.hh"
#include "nsrf/regfile/regfile.hh"

namespace nsrf::regfile
{

/** The fine-grain associative register file. */
class NamedStateRegisterFile : public RegisterFile
{
  public:
    /** Configuration of an NSF. */
    struct Config
    {
        unsigned lines = 128;      //!< decoder/array lines
        unsigned regsPerLine = 1;  //!< unit of associativity (1..4+)
        /** Largest register offset a context may use + 1. */
        unsigned maxRegsPerContext = 32;
        MissPolicy missPolicy = MissPolicy::ReloadSingle;
        WritePolicy writePolicy = WritePolicy::WriteAllocate;
        cam::ReplacementKind replacement = cam::ReplacementKind::Lru;
        /** Spill only modified registers (dirty bits).  The paper's
         * design spills every valid register of the victim line; the
         * dirty-bit variant is an ablation. */
        bool spillDirtyOnly = false;
        CostParams costs{};
        std::uint64_t seed = 1; //!< for Random replacement
    };

    NamedStateRegisterFile(const Config &config,
                           mem::MemorySystem &backing);

    AccessResult read(ContextId cid, RegIndex off,
                      Word &value) override;
    AccessResult write(ContextId cid, RegIndex off,
                       Word value) override;
    AccessResult switchTo(ContextId cid) override;
    void allocContext(ContextId cid, Addr backing_frame) override;
    void freeContext(ContextId cid) override;
    AccessResult freeRegister(ContextId cid, RegIndex off) override;
    AccessResult flushContext(ContextId cid) override;
    void restoreContext(ContextId cid, Addr backing_frame) override;
    std::string describe() const override;

    const Config &config() const { return config_; }

    /** @return true when <cid:off> is resident with valid data. */
    bool residentValid(ContextId cid, RegIndex off) const;

    /** @return number of resident lines owned by @p cid. */
    unsigned residentLines(ContextId cid) const;

    /** @return the associative decoder (for tests and benches). */
    const cam::AssociativeDecoder &decoder() const { return decoder_; }

    /** @return the Ctable used for backing-frame translation. */
    const Ctable &ctable() const { return ctable_; }

    /** @return the replacement state (for tests and audits). */
    const cam::ReplacementState &replacement() const { return repl_; }

    /**
     * Walk every live structure and verify the NSF's cross-structure
     * invariants on top of the component self-audits:
     *
     *  - decoder, replacement state, and Ctable pass their own
     *    audits;
     *  - a line is a replacement candidate iff its tag is valid;
     *  - every valid tag names an allocated context with a Ctable
     *    translation, line-aligned and within the context's range;
     *  - valid/dirty bits sit only under valid tags, dirty implies
     *    valid, and the occupancy counters (activeCount, per-context
     *    residentLines/residentLiveRegs, residentCtxCount) agree
     *    with a full recount;
     *  - contexts and Ctable entries are in bijection, and no two
     *    contexts share a backing frame;
     *  - a clean valid register equals its backing-store word
     *    (dirty-bit coherence: clean means "not modified since
     *    load", so eviction may skip the writeback under
     *    spillDirtyOnly).
     *
     * @return true when every invariant holds; otherwise false with
     * the first violation described in @p why (when non-null).
     */
    bool auditInvariants(std::string *why = nullptr) const;

  private:
    friend struct ::nsrf::check::TestAccess;
    /** Software-visible state of one activation. */
    struct ContextState
    {
        /** Live registers whose values sit in the backing frame. */
        std::vector<bool> validInMem;
        unsigned residentLines = 0;
        unsigned residentLiveRegs = 0;
    };

    ContextState &state(ContextId cid);

    RegIndex lineOffsetOf(RegIndex off) const
    {
        return off - off % config_.regsPerLine;
    }

    std::size_t
    slotOf(std::size_t line, RegIndex off) const
    {
        return line * config_.regsPerLine + off % config_.regsPerLine;
    }

    /**
     * Find a line for <cid:line_off>, evicting a victim when the
     * file is full, and program the decoder.  @return the line.
     */
    std::size_t allocateLine(ContextId cid, RegIndex line_off,
                             AccessResult &res);

    /** Spill line @p line back to its owner's backing frame. */
    void evictLine(std::size_t line, AccessResult &res);

    /**
     * Reload words of @p line (owned by @p cid, base offset
     * @p line_off) according to @p policy.  @p demand_off is the
     * offset that must be present afterwards.
     */
    void reloadLine(std::size_t line, ContextId cid,
                    RegIndex line_off, RegIndex demand_off,
                    MissPolicy policy, AccessResult &res);

    /** Reload the single word <cid:off> into @p line. */
    void reloadWord(std::size_t line, ContextId cid, RegIndex off,
                    AccessResult &res);

    /** Mark <line:off> valid, maintaining the occupancy counters. */
    void markValid(std::size_t line, ContextId cid, RegIndex off);

    void updateOccupancy();

    Config config_;
    cam::AssociativeDecoder decoder_;
    cam::ReplacementState repl_;
    Ctable ctable_;
    std::vector<Word> array_;  //!< lines * regsPerLine words
    std::vector<bool> valid_;  //!< per physical register
    std::vector<bool> dirty_;  //!< modified since load
    std::unordered_map<ContextId, ContextState> contexts_;
    std::size_t activeCount_ = 0;
    std::size_t residentCtxCount_ = 0;
    /** Dirty registers, counted at the dirty-bit flip sites.  Only
     * maintained (and only read) in NSRF_TRACE builds, feeding the
     * dirty-line counter track; stays 0 otherwise. */
    std::size_t traceDirtyWords_ = 0;
};

} // namespace nsrf::regfile

#endif // NSRF_REGFILE_NAMED_STATE_HH
