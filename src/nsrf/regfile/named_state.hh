/**
 * @file
 * The Named-State Register File (paper §4, Figure 3).
 *
 * A fully-associative register file with very small lines.  Each line
 * carries a CAM tag <Context ID : line-aligned offset> in the
 * associative decoder and a valid bit per register.  A thread's
 * registers may sit anywhere in the array; any number of contexts can
 * be resident at once.
 *
 * Operation (paper §4.2):
 *  - the first write to a register name allocates a line by
 *    programming the decoder (write-allocate), or additionally
 *    fetches the rest of the line (fetch-on-write);
 *  - a read that misses stalls and reloads on demand — a single
 *    register, the live registers of the line, or the whole line,
 *    depending on MissPolicy (the three strategies of Figure 13);
 *  - when a write needs a line and the file is full, a victim line is
 *    spilled to its context's backing frame (LRU by default);
 *  - context switches neither spill nor reload anything;
 *  - contexts and individual registers can be deallocated explicitly,
 *    freeing lines with no memory traffic.
 */

#ifndef NSRF_REGFILE_NAMED_STATE_HH
#define NSRF_REGFILE_NAMED_STATE_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "nsrf/cam/decoder.hh"
#include "nsrf/cam/replacement.hh"
#include "nsrf/common/audit.hh"
#include "nsrf/common/logging.hh"
#include "nsrf/regfile/ctable.hh"
#include "nsrf/regfile/regfile.hh"
#include "nsrf/trace/hooks.hh"

namespace nsrf::regfile
{

/** The fine-grain associative register file. */
class NamedStateRegisterFile final : public RegisterFile
{
  public:
    /** Configuration of an NSF. */
    struct Config
    {
        unsigned lines = 128;      //!< decoder/array lines
        unsigned regsPerLine = 1;  //!< unit of associativity (1..4+)
        /** Largest register offset a context may use + 1. */
        unsigned maxRegsPerContext = 32;
        MissPolicy missPolicy = MissPolicy::ReloadSingle;
        WritePolicy writePolicy = WritePolicy::WriteAllocate;
        cam::ReplacementKind replacement = cam::ReplacementKind::Lru;
        /** Spill only modified registers (dirty bits).  The paper's
         * design spills every valid register of the victim line; the
         * dirty-bit variant is an ablation. */
        bool spillDirtyOnly = false;
        CostParams costs{};
        std::uint64_t seed = 1; //!< for Random replacement
    };

    NamedStateRegisterFile(const Config &config,
                           mem::MemorySystem &backing);

    AccessResult read(ContextId cid, RegIndex off,
                      Word &value) override;
    AccessResult write(ContextId cid, RegIndex off,
                       Word value) override;
    AccessResult switchTo(ContextId cid) override;
    void allocContext(ContextId cid, Addr backing_frame) override;
    void freeContext(ContextId cid) override;
    AccessResult freeRegister(ContextId cid, RegIndex off) override;
    AccessResult flushContext(ContextId cid) override;
    void restoreContext(ContextId cid, Addr backing_frame) override;
    std::string describe() const override;

    /** Hint the CAM probe group and Ctable entry of an upcoming
     * access toward the cache; no state or counters change. */
    void
    prefetchHint(ContextId cid, RegIndex off) const override
    {
        decoder_.prefetchMatch(
            cid, config_.regsPerLine == 1 ? off : lineOffsetOf(off));
        ctable_.prefetch(cid);
    }

    const Config &config() const { return config_; }

    /**
     * Zero-overhead typed view over one compile-time kernel
     * selection.  The simulator instantiates this for the dominant
     * one-register-per-line organizations so the access kernels
     * inline straight into its event loop; the virtual
     * read()/write() otherwise pay a member-pointer indirection per
     * access.  Everything else forwards to the underlying file.
     */
    template <MissPolicy MP, WritePolicy WP>
    class OneWordKernels
    {
      public:
        explicit OneWordKernels(NamedStateRegisterFile &rf) : rf_(rf)
        {
        }

        AccessResult
        read(ContextId cid, RegIndex off, Word &value)
        {
            return rf_.readImpl<MP, true>(cid, off, value);
        }

        AccessResult
        write(ContextId cid, RegIndex off, Word value)
        {
            return rf_.writeImpl<MP, WP, true>(cid, off, value);
        }

        /** One-word lines: the probed line offset IS the register
         * offset, so the hint skips the line-offset fold. */
        void
        prefetchHint(ContextId cid, RegIndex off) const
        {
            rf_.decoder_.prefetchMatch(cid, off);
            rf_.ctable_.prefetch(cid);
        }

        AccessResult switchTo(ContextId cid)
        {
            return rf_.switchTo(cid);
        }
        AccessResult freeRegister(ContextId cid, RegIndex off)
        {
            return rf_.freeRegister(cid, off);
        }
        void finalize() { rf_.finalize(); }
        const RegFileStats &stats() const { return rf_.stats(); }
        std::string describe() const { return rf_.describe(); }
        double meanUtilization() const
        {
            return rf_.meanUtilization();
        }
        double maxUtilization() const { return rf_.maxUtilization(); }

      private:
        NamedStateRegisterFile &rf_;
    };

    /** @return true when <cid:off> is resident with valid data. */
    bool residentValid(ContextId cid, RegIndex off) const;

    /** @return number of resident lines owned by @p cid. */
    unsigned residentLines(ContextId cid) const;

    /** @return the associative decoder (for tests and benches). */
    const cam::AssociativeDecoder &decoder() const { return decoder_; }

    /** @return the Ctable used for backing-frame translation. */
    const Ctable &ctable() const { return ctable_; }

    /** @return the replacement state (for tests and audits). */
    const cam::ReplacementState &replacement() const { return repl_; }

    /**
     * Walk every live structure and verify the NSF's cross-structure
     * invariants on top of the component self-audits:
     *
     *  - decoder, replacement state, and Ctable pass their own
     *    audits;
     *  - a line is a replacement candidate iff its tag is valid;
     *  - every valid tag names an allocated context with a Ctable
     *    translation, line-aligned and within the context's range;
     *  - valid/dirty bits sit only under valid tags, dirty implies
     *    valid, and the occupancy counters (activeCount, per-context
     *    residentLines/residentLiveRegs, residentCtxCount) agree
     *    with a full recount;
     *  - contexts and Ctable entries are in bijection, and no two
     *    contexts share a backing frame;
     *  - a clean valid register equals its backing-store word
     *    (dirty-bit coherence: clean means "not modified since
     *    load", so eviction may skip the writeback under
     *    spillDirtyOnly).
     *
     * @return true when every invariant holds; otherwise false with
     * the first violation described in @p why (when non-null).
     */
    bool auditInvariants(std::string *why = nullptr) const;

  private:
    friend struct ::nsrf::check::TestAccess;
    friend struct ::nsrf::snapshot::SnapshotAccess;
    /** Software-visible state of one activation. */
    struct ContextState
    {
        /** Live registers whose values sit in the backing frame. */
        std::vector<bool> validInMem;
        unsigned residentLines = 0;
        unsigned residentLiveRegs = 0;
    };

    ContextState &state(ContextId cid);

    /**
     * Per-register metadata bits, packed one byte per physical slot
     * in a dense side array (meta_) instead of two std::vector<bool>
     * bit vectors.  Every event touches these; a byte load plus a
     * mask beats two bit-vector probes (separate words, masking on
     * both read and write), and a 64-register line's metadata now
     * spans one cache line instead of two bit-vector fragments.
     */
    static constexpr std::uint8_t kMetaValid = 1u << 0;
    static constexpr std::uint8_t kMetaDirty = 1u << 1;

    bool slotValid(std::size_t slot) const
    {
        return (meta_[slot] & kMetaValid) != 0;
    }
    bool slotDirty(std::size_t slot) const
    {
        return (meta_[slot] & kMetaDirty) != 0;
    }

    RegIndex lineOffsetOf(RegIndex off) const
    {
        return off - off % config_.regsPerLine;
    }

    std::size_t
    slotOf(std::size_t line, RegIndex off) const
    {
        return line * config_.regsPerLine + off % config_.regsPerLine;
    }

    /** slotOf with the one-word-per-line case folded at compile
     * time: the slot IS the line, no multiply or modulo. */
    template <bool OneWord>
    std::size_t
    slotOfT(std::size_t line, RegIndex off) const
    {
        if constexpr (OneWord) {
            (void)off;
            return line;
        } else {
            return line * config_.regsPerLine +
                   off % config_.regsPerLine;
        }
    }

    /**
     * Find a line for <cid:line_off>, evicting a victim when the
     * file is full, and program the decoder.  @return the line.
     */
    std::size_t allocateLine(ContextId cid, RegIndex line_off,
                             AccessResult &res);

    /** Spill line @p line back to its owner's backing frame. */
    void evictLine(std::size_t line, AccessResult &res);

    /**
     * Reload words of @p line (owned by @p cid, base offset
     * @p line_off) according to the compile-time policy.
     * @p demand_off is the offset that must be present afterwards.
     */
    template <MissPolicy MP, bool OneWord>
    void reloadLineImpl(std::size_t line, ContextId cid,
                        RegIndex line_off, RegIndex demand_off,
                        AccessResult &res);

    /** Reload the single word <cid:off> into @p line. */
    void reloadWord(std::size_t line, ContextId cid, RegIndex off,
                    AccessResult &res);

    /** Mark physical @p slot valid, maintaining the occupancy
     * counters (@p cid owns the slot's line). */
    void markValid(std::size_t slot, ContextId cid);

    void updateOccupancy();

    /**
     * The per-access policy branches (miss policy, write policy,
     * line size) are invariant after construction; the access
     * kernels below are templates over those decisions, selected
     * once here, so read()/write() run straight-line code with the
     * policy switches folded away.
     */
    void selectKernels();
    template <MissPolicy MP> void bindKernels();
    template <MissPolicy MP, bool OneWord> void bindKernels2();

    template <MissPolicy MP, bool OneWord>
    AccessResult readImpl(ContextId cid, RegIndex off, Word &value);
    template <MissPolicy MP, WritePolicy WP, bool OneWord>
    AccessResult writeImpl(ContextId cid, RegIndex off, Word value);

    using ReadKernel = AccessResult (NamedStateRegisterFile::*)(
        ContextId, RegIndex, Word &);
    using WriteKernel = AccessResult (NamedStateRegisterFile::*)(
        ContextId, RegIndex, Word);

    Config config_;
    cam::AssociativeDecoder decoder_;
    cam::ReplacementState repl_;
    Ctable ctable_;
    std::vector<Word> array_;  //!< lines * regsPerLine words
    /** Packed kMetaValid|kMetaDirty byte per physical register (SoA
     * hot-state; see the accessor comment above). */
    std::vector<std::uint8_t> meta_;
    std::unordered_map<ContextId, ContextState> contexts_;
    ReadKernel readKernel_ = nullptr;
    WriteKernel writeKernel_ = nullptr;
    /** Reused line-index buffer for bulk free/flush — no per-call
     * allocation on context deallocation or CID stealing. */
    std::vector<std::size_t> lineScratch_;
    std::size_t activeCount_ = 0;
    std::size_t residentCtxCount_ = 0;
    /** Occupancy last handed to noteOccupancy(); initialized to an
     * impossible value so the first access always records. */
    std::size_t lastNotedActive_ = static_cast<std::size_t>(-1);
    std::size_t lastNotedResident_ = static_cast<std::size_t>(-1);
    /** Dirty registers, counted at the dirty-bit flip sites.  Only
     * maintained (and only read) in NSRF_TRACE builds, feeding the
     * dirty-line counter track; stays 0 otherwise. */
    std::size_t traceDirtyWords_ = 0;
};

// The access kernels live in the header so that translation units
// which dispatch on the policy types (the simulator's devirtualized
// event loop, via OneWordKernels) can inline them; named_state.cc
// instantiates the member-pointer kernels for the virtual
// read()/write() path.

inline NamedStateRegisterFile::ContextState &
NamedStateRegisterFile::state(ContextId cid)
{
    auto it = contexts_.find(cid);
    nsrf_assert(it != contexts_.end(),
                "access to unallocated context %u", cid);
    return it->second;
}

inline void
NamedStateRegisterFile::markValid(std::size_t slot, ContextId cid)
{
    if (!slotValid(slot)) {
        meta_[slot] |= kMetaValid;
        ++activeCount_;
        ContextState &ctx = state(cid);
        if (ctx.residentLiveRegs == 0 && ctx.residentLines == 0) {
            // Becoming resident is tracked via residentLines; this
            // path cannot happen because markValid follows a line
            // allocation.  Keep the check as an invariant.
            nsrf_panic("valid register outside any resident line");
        }
        ++ctx.residentLiveRegs;
    }
}

inline void
NamedStateRegisterFile::updateOccupancy()
{
    // Occupancy is unchanged on the hit path; two integer compares
    // skip the double conversions and record calls whose values
    // TimeWeightedMean would discard anyway (record() drops
    // equal-value re-records, so skipping them is bit-identical).
    if (activeCount_ != lastNotedActive_ ||
        residentCtxCount_ != lastNotedResident_) {
        lastNotedActive_ = activeCount_;
        lastNotedResident_ = residentCtxCount_;
        noteOccupancy(activeCount_, residentCtxCount_);
    }
    nsrf_trace_hook(counters(
        static_cast<std::uint32_t>(activeCount_),
        static_cast<std::uint32_t>(residentCtxCount_),
        static_cast<std::uint32_t>(traceDirtyWords_)));
    nsrf_audit_hook(auditInvariants(&nsrf_audit_why_));
}

template <MissPolicy MP, bool OneWord>
void
NamedStateRegisterFile::reloadLineImpl(std::size_t line, ContextId cid,
                                       RegIndex line_off,
                                       RegIndex demand_off,
                                       AccessResult &res)
{
    if constexpr (OneWord) {
        // The demanded word is the whole line under every policy.
        (void)line_off;
        reloadWord(line, cid, demand_off, res);
    } else {
        ContextState &ctx = state(cid);
        for (unsigned w = 0; w < config_.regsPerLine; ++w) {
            RegIndex off = line_off + w;
            if (off >= config_.maxRegsPerContext)
                break;
            bool demand = off == demand_off;
            bool wanted;
            if constexpr (MP == MissPolicy::ReloadSingle)
                wanted = demand;
            else if constexpr (MP == MissPolicy::ReloadLive)
                wanted = demand || ctx.validInMem[off];
            else
                wanted = true;
            if (wanted)
                reloadWord(line, cid, off, res);
        }
    }
}

template <MissPolicy MP, bool OneWord>
AccessResult
NamedStateRegisterFile::readImpl(ContextId cid, RegIndex off,
                                 Word &value)
{
    nsrf_assert(off < config_.maxRegsPerContext,
                "offset %u exceeds context size %u", off,
                config_.maxRegsPerContext);
    tick();
    ++stats_.reads;
    AccessResult res;

    RegIndex line_off = OneWord ? off : lineOffsetOf(off);
    std::size_t line = decoder_.match(cid, line_off);

    if (line == cam::AssociativeDecoder::npos) [[unlikely]] {
        // Full miss: no line holds this name.  Stall, allocate a
        // line, and reload on demand (paper §4.2).
        ++stats_.readMisses;
        res.hit = false;
        res.stall += config_.costs.missDetect;
        nsrf_trace_hook(emit(trace::Kind::ReadMiss, cid, off, 0));
        line = allocateLine(cid, line_off, res);
        reloadLineImpl<MP, OneWord>(line, cid, line_off, off, res);
    } else if (!slotValid(slotOfT<OneWord>(line, off))) [[unlikely]] {
        // The line is resident but this register is not (a neighbour
        // allocated the line).  Reload just this word.
        ++stats_.readMisses;
        res.hit = false;
        res.stall += config_.costs.missDetect;
        nsrf_trace_hook(emit(trace::Kind::ReadMiss, cid, off, 1));
        reloadWord(line, cid, off, res);
        repl_.touch(line);
    } else {
        nsrf_trace_hook(emit(trace::Kind::ReadHit, cid, off));
        repl_.touch(line);
    }

    value = array_[slotOfT<OneWord>(line, off)];
    stats_.stallCycles += res.stall;
    updateOccupancy();
    return res;
}

template <MissPolicy MP, WritePolicy WP, bool OneWord>
AccessResult
NamedStateRegisterFile::writeImpl(ContextId cid, RegIndex off,
                                  Word value)
{
    nsrf_assert(off < config_.maxRegsPerContext,
                "offset %u exceeds context size %u", off,
                config_.maxRegsPerContext);
    tick();
    ++stats_.writes;
    AccessResult res;

    RegIndex line_off = OneWord ? off : lineOffsetOf(off);
    std::size_t line = decoder_.match(cid, line_off);

    if (line == cam::AssociativeDecoder::npos) [[unlikely]] {
        // The first write to a new register allocates it in the
        // array (paper §4.2).
        ++stats_.writeMisses;
        res.hit = false;
        nsrf_trace_hook(emit(trace::Kind::WriteMiss, cid, off));
        line = allocateLine(cid, line_off, res);
        if constexpr (WP == WritePolicy::FetchOnWrite) {
            res.stall += config_.costs.missDetect;
            if constexpr (!OneWord) {
                // Fetch the rest of the line; the written word
                // itself needs no reload.
                ContextState &ctx = state(cid);
                for (unsigned w = 0; w < config_.regsPerLine; ++w) {
                    RegIndex other = line_off + w;
                    if (other == off ||
                        other >= config_.maxRegsPerContext) {
                        continue;
                    }
                    bool wanted;
                    if constexpr (MP == MissPolicy::ReloadLine)
                        wanted = true;
                    else if constexpr (MP == MissPolicy::ReloadLive)
                        wanted = ctx.validInMem[other];
                    else
                        wanted = false;
                    if (wanted)
                        reloadWord(line, cid, other, res);
                }
            }
        }
    } else {
        nsrf_trace_hook(emit(trace::Kind::WriteHit, cid, off));
        repl_.touch(line);
    }

    std::size_t slot = slotOfT<OneWord>(line, off);
    array_[slot] = value;
    // One metadata load serves the dirty update and the valid check;
    // the write-hit path then touches meta_[slot] exactly twice
    // (load + combined store) instead of four bit-vector probes.
    std::uint8_t m = meta_[slot];
    nsrf_trace_stmt(if (!(m & kMetaDirty)) ++traceDirtyWords_;)
    meta_[slot] = static_cast<std::uint8_t>(m | kMetaValid |
                                            kMetaDirty);
    if (!(m & kMetaValid)) [[unlikely]] {
        ++activeCount_;
        ContextState &ctx = state(cid);
        if (ctx.residentLiveRegs == 0 && ctx.residentLines == 0)
            nsrf_panic("valid register outside any resident line");
        ++ctx.residentLiveRegs;
    }
    stats_.stallCycles += res.stall;
    updateOccupancy();
    return res;
}

} // namespace nsrf::regfile

#endif // NSRF_REGFILE_NAMED_STATE_HH
