#include "nsrf/regfile/ctable.hh"

#include "nsrf/common/logging.hh"

namespace nsrf::regfile
{

Ctable::Ctable(std::size_t entries)
    : frames_(entries, invalidAddr), valid_(entries, false)
{
    nsrf_assert(entries > 0, "Ctable needs at least one entry");
}

void
Ctable::set(ContextId cid, Addr frame_base)
{
    nsrf_assert(cid < frames_.size(),
                "CID %u exceeds Ctable capacity %zu", cid,
                frames_.size());
    if (!valid_[cid])
        ++mapped_;
    frames_[cid] = frame_base;
    valid_[cid] = true;
}

void
Ctable::clear(ContextId cid)
{
    nsrf_assert(cid < frames_.size(),
                "CID %u exceeds Ctable capacity %zu", cid,
                frames_.size());
    if (valid_[cid])
        --mapped_;
    valid_[cid] = false;
    frames_[cid] = invalidAddr;
}

bool
Ctable::has(ContextId cid) const
{
    return cid < frames_.size() && valid_[cid];
}

Addr
Ctable::lookup(ContextId cid) const
{
    nsrf_assert(has(cid), "Ctable lookup of unmapped CID %u", cid);
    return frames_[cid];
}

} // namespace nsrf::regfile
