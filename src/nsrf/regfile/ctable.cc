#include "nsrf/regfile/ctable.hh"

#include "nsrf/common/audit.hh"
#include "nsrf/common/logging.hh"
#include "nsrf/trace/hooks.hh"

namespace nsrf::regfile
{

Ctable::Ctable(std::size_t entries)
    : frames_(entries, invalidAddr), valid_(entries, false)
{
    nsrf_assert(entries > 0, "Ctable needs at least one entry");
}

void
Ctable::set(ContextId cid, Addr frame_base)
{
    nsrf_assert(cid < frames_.size(),
                "CID %u exceeds Ctable capacity %zu", cid,
                frames_.size());
    if (!valid_[cid])
        ++mapped_;
    frames_[cid] = frame_base;
    valid_[cid] = true;
    nsrf_trace_hook(emit(trace::Kind::CtableSet, cid, frame_base));
    nsrf_audit_hook(auditInvariants(&nsrf_audit_why_));
}

void
Ctable::clear(ContextId cid)
{
    nsrf_assert(cid < frames_.size(),
                "CID %u exceeds Ctable capacity %zu", cid,
                frames_.size());
    if (valid_[cid])
        --mapped_;
    valid_[cid] = false;
    frames_[cid] = invalidAddr;
    nsrf_trace_hook(emit(trace::Kind::CtableClear, cid));
    nsrf_audit_hook(auditInvariants(&nsrf_audit_why_));
}

bool
Ctable::has(ContextId cid) const
{
    return cid < frames_.size() && valid_[cid];
}

Addr
Ctable::lookup(ContextId cid) const
{
    nsrf_assert(has(cid), "Ctable lookup of unmapped CID %u", cid);
    return frames_[cid];
}

bool
Ctable::auditInvariants(std::string *why) const
{
    using auditing::fail;
    std::size_t mapped = 0;
    for (std::size_t cid = 0; cid < frames_.size(); ++cid) {
        if (valid_[cid]) {
            ++mapped;
            // set() never stores invalidAddr, so a valid entry
            // holding one means the valid bit was corrupted.
            if (frames_[cid] == invalidAddr) {
                return fail(why,
                            "mapped CID %zu translates to the "
                            "invalid address",
                            cid);
            }
        } else if (frames_[cid] != invalidAddr) {
            return fail(why,
                        "unmapped CID %zu still holds frame 0x%08x",
                        cid, frames_[cid]);
        }
    }
    if (mapped != mapped_) {
        return fail(why,
                    "mapped count %zu disagrees with %zu valid "
                    "entries",
                    mapped_, mapped);
    }
    return true;
}

} // namespace nsrf::regfile
