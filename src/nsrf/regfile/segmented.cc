#include "nsrf/regfile/segmented.hh"

#include "nsrf/common/logging.hh"
#include "nsrf/mem/memsys.hh"

namespace nsrf::regfile
{

SegmentedRegisterFile::SegmentedRegisterFile(
    const Config &config, mem::MemorySystem &backing)
    : RegisterFile(config.frames * config.regsPerFrame, backing),
      config_(config),
      repl_(config.frames, config.replacement, config.seed)
{
    nsrf_assert(config.frames > 0 && config.regsPerFrame > 0,
                "segmented file needs frames and registers");
    frames_.resize(config.frames);
    for (auto &frame : frames_)
        frame.regs.assign(config.regsPerFrame, 0);
}

SegmentedRegisterFile::ContextState &
SegmentedRegisterFile::state(ContextId cid)
{
    auto it = contexts_.find(cid);
    nsrf_assert(it != contexts_.end(),
                "access to unallocated context %u", cid);
    return it->second;
}

void
SegmentedRegisterFile::allocContext(ContextId cid, Addr backing_frame)
{
    nsrf_assert(contexts_.find(cid) == contexts_.end(),
                "context %u is already allocated", cid);
    ContextState fresh;
    fresh.live.assign(config_.regsPerFrame, false);
    fresh.validInMem.assign(config_.regsPerFrame, false);
    contexts_.emplace(cid, std::move(fresh));
    ctable_.set(cid, backing_frame);
}

void
SegmentedRegisterFile::freeContext(ContextId cid)
{
    auto it = contexts_.find(cid);
    nsrf_assert(it != contexts_.end(),
                "freeing unallocated context %u", cid);

    auto res_it = residentFrame_.find(cid);
    if (res_it != residentFrame_.end()) {
        std::size_t f = res_it->second;
        activeCount_ -= it->second.liveCount;
        frames_[f] = Frame{};
        frames_[f].regs.assign(config_.regsPerFrame, 0);
        repl_.release(f);
        residentFrame_.erase(res_it);
        updateOccupancy();
    }
    contexts_.erase(it);
    ctable_.clear(cid);
    if (current_ == cid)
        current_ = invalidContext;
}

bool
SegmentedRegisterFile::resident(ContextId cid) const
{
    return residentFrame_.find(cid) != residentFrame_.end();
}

void
SegmentedRegisterFile::restoreContext(ContextId cid,
                                      Addr backing_frame)
{
    allocContext(cid, backing_frame);
    // The whole frame reloads when the context next becomes
    // resident; with valid-bit tracking every word counts as live.
    auto &ctx = contexts_.at(cid);
    ctx.everSpilled = true;
    std::fill(ctx.validInMem.begin(), ctx.validInMem.end(), true);
}

AccessResult
SegmentedRegisterFile::flushContext(ContextId cid)
{
    tick();
    AccessResult res;
    auto it = residentFrame_.find(cid);
    if (it != residentFrame_.end())
        spillFrame(it->second, res);
    contexts_.erase(cid);
    ctable_.clear(cid);
    if (current_ == cid)
        current_ = invalidContext;
    stats_.stallCycles += res.stall;
    updateOccupancy();
    return res;
}

void
SegmentedRegisterFile::chargeTransfer(Cycles mem_latency,
                                      AccessResult &res)
{
    if (config_.mechanism == SpillMechanism::HardwareAssist) {
        // The spill engine streams registers through the cache
        // port: the access latency plus tag/port occupancy.
        res.stall += mem_latency + config_.costs.hwPerRegExtra;
    } else {
        // A trap handler wraps each move in address arithmetic and
        // loop control.
        res.stall += mem_latency + config_.costs.swPerRegExtra;
    }
}

void
SegmentedRegisterFile::chargeSwitchOverhead(AccessResult &res)
{
    if (config_.mechanism == SpillMechanism::HardwareAssist)
        res.stall += config_.costs.hwSwitchOverhead;
    else
        res.stall += config_.costs.swTrapOverhead;
}

void
SegmentedRegisterFile::spillFrame(std::size_t f, AccessResult &res)
{
    Frame &frame = frames_[f];
    nsrf_assert(frame.inUse, "spilling an empty frame");
    ContextState &ctx = state(frame.cid);
    Addr base = ctable_.lookup(frame.cid);

    for (RegIndex off = 0; off < config_.regsPerFrame; ++off) {
        bool live = ctx.live[off];
        if (config_.trackValid && !live)
            continue; // valid bits let the hardware skip dead words
        Cycles lat = backing_.writeWord(base + off * wordBytes,
                                        frame.regs[off]);
        chargeTransfer(lat, res);
        ++res.spilled;
        ++stats_.regsSpilled;
        if (live) {
            ++stats_.liveRegsSpilled;
            ctx.validInMem[off] = true;
        }
    }

    ctx.everSpilled = true;
    activeCount_ -= ctx.liveCount;
    residentFrame_.erase(frame.cid);
    repl_.release(f);
    frame.inUse = false;
    frame.cid = invalidContext;
}

void
SegmentedRegisterFile::loadFrame(std::size_t f, ContextId cid,
                                 AccessResult &res)
{
    Frame &frame = frames_[f];
    nsrf_assert(!frame.inUse, "loading into an occupied frame");
    ContextState &ctx = state(cid);
    Addr base = ctable_.lookup(cid);

    // A brand-new activation has nothing to restore; the frame is
    // simply assigned.  A previously spilled context is reloaded —
    // the whole frame, or just the live registers with valid bits.
    if (ctx.everSpilled) {
        for (RegIndex off = 0; off < config_.regsPerFrame; ++off) {
            bool in_mem = ctx.validInMem[off];
            if (config_.trackValid && !in_mem)
                continue;
            Word value;
            Cycles lat =
                backing_.readWord(base + off * wordBytes, value);
            chargeTransfer(lat, res);
            frame.regs[off] = value;
            ++res.reloaded;
            ++stats_.regsReloaded;
            if (in_mem)
                ++stats_.liveRegsReloaded;
        }
    }

    frame.inUse = true;
    frame.cid = cid;
    residentFrame_[cid] = f;
    repl_.insert(f);
    activeCount_ += ctx.liveCount;
}

void
SegmentedRegisterFile::ensureResident(ContextId cid, AccessResult &res)
{
    if (resident(cid)) {
        repl_.touch(residentFrame_[cid]);
        return;
    }

    ++stats_.switchMisses;
    res.hit = false;

    // Find a free frame, or spill the victim.
    std::size_t target = frames_.size();
    for (std::size_t f = 0; f < frames_.size(); ++f) {
        if (!frames_[f].inUse) {
            target = f;
            break;
        }
    }

    // A fresh activation landing in a free frame moves no data;
    // that is frame-pointer bookkeeping, not a spill/reload event.
    bool needs_spill = target == frames_.size();
    bool needs_reload = state(cid).everSpilled;
    if (needs_spill || needs_reload) {
        chargeSwitchOverhead(res);
    } else {
        res.stall +=
            config_.mechanism == SpillMechanism::HardwareAssist
                ? 2
                : 6;
    }

    Cycles stall_before = res.stall;
    if (needs_spill) {
        target = repl_.victim();
        spillFrame(target, res);
    }
    loadFrame(target, cid, res);
    if (config_.backgroundTransfer) {
        // The spill engine works behind the pipeline: the victim
        // drains in the background and the new frame streams in
        // while execution resumes, hiding about half the transfer.
        res.stall = stall_before + (res.stall - stall_before) / 2;
    }
    updateOccupancy();
}

AccessResult
SegmentedRegisterFile::switchTo(ContextId cid)
{
    tick();
    ++stats_.contextSwitches;
    AccessResult res;
    ensureResident(cid, res);
    current_ = cid;
    stats_.stallCycles += res.stall;
    return res;
}

AccessResult
SegmentedRegisterFile::read(ContextId cid, RegIndex off, Word &value)
{
    nsrf_assert(off < config_.regsPerFrame,
                "offset %u exceeds frame size %u", off,
                config_.regsPerFrame);
    tick();
    ++stats_.reads;
    AccessResult res;
    ensureResident(cid, res);
    if (!res.hit)
        ++stats_.readMisses;
    value = frames_[residentFrame_[cid]].regs[off];
    stats_.stallCycles += res.stall;
    return res;
}

AccessResult
SegmentedRegisterFile::write(ContextId cid, RegIndex off, Word value)
{
    nsrf_assert(off < config_.regsPerFrame,
                "offset %u exceeds frame size %u", off,
                config_.regsPerFrame);
    tick();
    ++stats_.writes;
    AccessResult res;
    ensureResident(cid, res);
    if (!res.hit)
        ++stats_.writeMisses;

    ContextState &ctx = state(cid);
    frames_[residentFrame_[cid]].regs[off] = value;
    if (!ctx.live[off]) {
        ctx.live[off] = true;
        ++ctx.liveCount;
        ++activeCount_;
        updateOccupancy();
    }
    stats_.stallCycles += res.stall;
    return res;
}

AccessResult
SegmentedRegisterFile::freeRegister(ContextId cid, RegIndex off)
{
    nsrf_assert(off < config_.regsPerFrame,
                "offset %u exceeds frame size %u", off,
                config_.regsPerFrame);
    tick();
    ContextState &ctx = state(cid);
    if (ctx.live[off]) {
        ctx.live[off] = false;
        --ctx.liveCount;
        ctx.validInMem[off] = false;
        if (resident(cid)) {
            --activeCount_;
            updateOccupancy();
        }
    }
    return {};
}

void
SegmentedRegisterFile::updateOccupancy()
{
    noteOccupancy(activeCount_, residentFrame_.size());
}

std::string
SegmentedRegisterFile::describe() const
{
    std::string out = "segmented(";
    out += std::to_string(config_.frames) + "x" +
           std::to_string(config_.regsPerFrame);
    if (config_.trackValid)
        out += ",valid";
    out += config_.mechanism == SpillMechanism::HardwareAssist
               ? ",hw"
               : ",sw";
    if (config_.backgroundTransfer)
        out += ",bg";
    out += ",";
    out += cam::replacementName(config_.replacement);
    out += ")";
    return out;
}

namespace
{

SegmentedRegisterFile::Config
conventionalConfig(unsigned total_regs, SpillMechanism mechanism,
                   const CostParams &costs)
{
    SegmentedRegisterFile::Config config;
    config.frames = 1;
    config.regsPerFrame = total_regs;
    config.trackValid = false;
    config.mechanism = mechanism;
    config.costs = costs;
    return config;
}

} // namespace

ConventionalRegisterFile::ConventionalRegisterFile(
    unsigned total_regs, mem::MemorySystem &backing,
    SpillMechanism mechanism, const CostParams &costs)
    : SegmentedRegisterFile(
          conventionalConfig(total_regs, mechanism, costs), backing)
{
}

std::string
ConventionalRegisterFile::describe() const
{
    return "conventional(" + std::to_string(totalRegs()) + ")";
}

} // namespace nsrf::regfile
