/**
 * @file
 * The segmented register file baseline (paper §3.1, Figure 2).
 *
 * The file is statically partitioned into equal-sized frames, one per
 * resident context.  A frame pointer selects the running frame, so a
 * switch among resident contexts is free.  Switching to a
 * non-resident context evicts a victim frame: the victim's registers
 * are spilled to its backing frame and the new context's registers
 * are reloaded in their place — whole frames at a time, which is
 * exactly the inefficiency the NSF removes.
 *
 * Options model the design points the paper compares against:
 *  - trackValid: per-register valid bits so only registers holding
 *    live data move (the "Segment live reg" curves of Figures 10/13);
 *  - SpillMechanism: a hardware spill engine vs a software trap
 *    handler (the two baseline bars of Figure 14).
 */

#ifndef NSRF_REGFILE_SEGMENTED_HH
#define NSRF_REGFILE_SEGMENTED_HH

#include <unordered_map>
#include <vector>

#include "nsrf/cam/replacement.hh"
#include "nsrf/regfile/ctable.hh"
#include "nsrf/regfile/regfile.hh"

namespace nsrf::regfile
{

/** Register file divided into fixed frames. */
class SegmentedRegisterFile : public RegisterFile
{
  public:
    /** Configuration of a segmented file. */
    struct Config
    {
        unsigned frames = 4;        //!< number of frames
        unsigned regsPerFrame = 32; //!< registers per frame
        bool trackValid = false;    //!< per-register valid bits
        SpillMechanism mechanism = SpillMechanism::HardwareAssist;
        /** Overlap frame transfers with execution: victim frames
         * spill in the background and reloads stream while the
         * pipeline restarts, halving the visible stall (the
         * dribble-back and context-preload schemes of the paper's
         * §5 related work [23, 29]).  Traffic is unchanged — the
         * NSF's bandwidth advantage remains. */
        bool backgroundTransfer = false;
        cam::ReplacementKind replacement = cam::ReplacementKind::Lru;
        CostParams costs{};
        std::uint64_t seed = 1;     //!< for Random replacement
    };

    SegmentedRegisterFile(const Config &config,
                          mem::MemorySystem &backing);

    AccessResult read(ContextId cid, RegIndex off,
                      Word &value) override;
    AccessResult write(ContextId cid, RegIndex off,
                       Word value) override;
    AccessResult switchTo(ContextId cid) override;
    void allocContext(ContextId cid, Addr backing_frame) override;
    void freeContext(ContextId cid) override;
    AccessResult freeRegister(ContextId cid, RegIndex off) override;
    AccessResult flushContext(ContextId cid) override;
    void restoreContext(ContextId cid, Addr backing_frame) override;
    std::string describe() const override;

    const Config &config() const { return config_; }

    /** @return true when @p cid currently owns a frame. */
    bool resident(ContextId cid) const;

    /** @return the Ctable used for backing-frame translation. */
    const Ctable &ctable() const { return ctable_; }

  private:
    friend struct ::nsrf::snapshot::SnapshotAccess;
    /** One physical frame. */
    struct Frame
    {
        bool inUse = false;
        ContextId cid = invalidContext;
        std::vector<Word> regs;
    };

    /** Software-visible state of one activation. */
    struct ContextState
    {
        /** Registers holding live data (written, not freed). */
        std::vector<bool> live;
        unsigned liveCount = 0;
        /** Live registers whose values sit in the backing frame. */
        std::vector<bool> validInMem;
        /** The context has been spilled at least once. */
        bool everSpilled = false;
    };

    ContextState &state(ContextId cid);

    /** Make @p cid own a frame, spilling a victim if needed. */
    void ensureResident(ContextId cid, AccessResult &res);

    /** Spill frame @p f back to its context's backing frame. */
    void spillFrame(std::size_t f, AccessResult &res);

    /** Load @p cid into (free) frame @p f. */
    void loadFrame(std::size_t f, ContextId cid, AccessResult &res);

    /** Charge the cost of moving one register. */
    void chargeTransfer(Cycles mem_latency, AccessResult &res);

    /** Charge the fixed cost of starting a frame miss. */
    void chargeSwitchOverhead(AccessResult &res);

    void updateOccupancy();

    Config config_;
    std::vector<Frame> frames_;
    cam::ReplacementState repl_;
    Ctable ctable_;
    std::unordered_map<ContextId, ContextState> contexts_;
    std::unordered_map<ContextId, std::size_t> residentFrame_;
    std::size_t activeCount_ = 0;
};

/**
 * A conventional single-context register file: the degenerate
 * segmented file with exactly one frame spanning the whole array.
 * Every context switch spills and reloads the entire file.
 */
class ConventionalRegisterFile : public SegmentedRegisterFile
{
  public:
    ConventionalRegisterFile(unsigned total_regs,
                             mem::MemorySystem &backing,
                             SpillMechanism mechanism =
                                 SpillMechanism::SoftwareTrap,
                             const CostParams &costs = {});

    std::string describe() const override;
};

} // namespace nsrf::regfile

#endif // NSRF_REGFILE_SEGMENTED_HH
