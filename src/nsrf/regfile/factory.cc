#include "nsrf/regfile/factory.hh"

#include "nsrf/common/logging.hh"

namespace nsrf::regfile
{

std::unique_ptr<RegisterFile>
makeRegisterFile(const RegFileConfig &config,
                 mem::MemorySystem &backing)
{
    switch (config.org) {
      case Organization::Conventional:
        return std::make_unique<ConventionalRegisterFile>(
            config.totalRegs, backing, config.mechanism,
            config.costs);

      case Organization::Segmented: {
          nsrf_assert(config.totalRegs % config.regsPerContext == 0,
                      "file size %u is not a whole number of frames",
                      config.totalRegs);
          SegmentedRegisterFile::Config seg;
          seg.frames = config.frames();
          seg.regsPerFrame = config.regsPerContext;
          seg.trackValid = config.trackValid;
          seg.mechanism = config.mechanism;
          seg.backgroundTransfer = config.backgroundTransfer;
          seg.replacement = config.replacement;
          seg.costs = config.costs;
          seg.seed = config.seed;
          return std::make_unique<SegmentedRegisterFile>(seg,
                                                         backing);
      }

      case Organization::NamedState: {
          nsrf_assert(config.totalRegs % config.regsPerLine == 0,
                      "file size %u is not a whole number of lines",
                      config.totalRegs);
          NamedStateRegisterFile::Config nsf;
          nsf.lines = config.lines();
          nsf.regsPerLine = config.regsPerLine;
          nsf.maxRegsPerContext = config.regsPerContext;
          nsf.missPolicy = config.missPolicy;
          nsf.writePolicy = config.writePolicy;
          nsf.replacement = config.replacement;
          nsf.spillDirtyOnly = config.spillDirtyOnly;
          nsf.costs = config.costs;
          nsf.seed = config.seed;
          return std::make_unique<NamedStateRegisterFile>(nsf,
                                                          backing);
      }

      case Organization::Windowed: {
          nsrf_assert(config.totalRegs % config.regsPerContext == 0,
                      "file size %u is not a whole number of "
                      "windows",
                      config.totalRegs);
          WindowedRegisterFile::Config win;
          win.windows = config.frames();
          win.regsPerWindow = config.regsPerContext;
          win.spillBatch = config.windowSpillBatch;
          win.trapOverhead = config.costs.swTrapOverhead;
          win.perRegExtra = config.costs.swPerRegExtra;
          return std::make_unique<WindowedRegisterFile>(win,
                                                        backing);
      }
    }
    nsrf_panic("unknown register file organization");
}

} // namespace nsrf::regfile
