/**
 * @file
 * The register file abstraction shared by every organization.
 *
 * All organizations name registers with a <Context ID : offset> pair
 * (paper §4.2).  A conventional or segmented file restricts which
 * contexts may be resident; the Named-State file caches any subset of
 * the register name space.  Backing storage for spilled registers is
 * a mem::MemorySystem; the virtual address of a context's backing
 * frame comes from the Ctable.
 *
 * The central correctness contract, enforced by the property tests:
 * a read of <cid:off> returns the most recently written value for
 * that name, no matter what spills, reloads, or context switches
 * happened in between.
 */

#ifndef NSRF_REGFILE_REGFILE_HH
#define NSRF_REGFILE_REGFILE_HH

#include <cstdint>
#include <string>

#include "nsrf/cam/replacement.hh"
#include "nsrf/common/types.hh"
#include "nsrf/stats/counters.hh"

namespace nsrf::mem
{
class MemorySystem;
} // namespace nsrf::mem

namespace nsrf::snapshot
{
struct SnapshotAccess;
} // namespace nsrf::snapshot

namespace nsrf::regfile
{

/** What one read/write/switch cost and caused. */
struct AccessResult
{
    bool hit = true;            //!< no miss processing was needed
    std::uint32_t spilled = 0;  //!< registers written to backing store
    std::uint32_t reloaded = 0; //!< registers read from backing store
    Cycles stall = 0;           //!< pipeline stall cycles charged
};

/** How a read (or fetch-on-write) miss refills a line (paper §7.3). */
enum class MissPolicy
{
    ReloadLine,   //!< reload every register of the missing line
    ReloadLive,   //!< reload only registers holding live data
    ReloadSingle, //!< reload only the register that missed
};

/** What a write miss does (paper §4.2). */
enum class WritePolicy
{
    WriteAllocate, //!< allocate the line, write only the new word
    FetchOnWrite,  //!< allocate and also reload the rest of the line
};

/** How a segmented file moves frames (Figure 14's two baselines). */
enum class SpillMechanism
{
    HardwareAssist, //!< dedicated spill engine, pipelined transfers
    SoftwareTrap,   //!< trap handler loops over the frame
};

/**
 * Fixed cycle costs of miss and switch processing.
 *
 * The paper takes instruction and memory timings from a Sparc2
 * emulator (§8).  These defaults are calibrated so the Figure 14
 * overhead decomposition reproduces the paper's cost structure:
 * a hardware spill engine streams a frame at ~2 cycles/register,
 * a software trap handler adds loop overhead per register plus a
 * fixed trap cost, and an isolated NSF single-register reload
 * cannot amortize a cache line fill the way a sequential frame
 * burst can.
 */
struct CostParams
{
    /** NSF: detect a miss and stall the issuing instruction. */
    Cycles missDetect = 1;
    /** NSF: extra cycles per demand-reloaded register (scattered
     * access; no line-fill amortization). */
    Cycles nsfMissExtra = 5;
    /** Segmented/HW: start the spill engine on a switch miss. */
    Cycles hwSwitchOverhead = 4;
    /** Segmented/HW: extra cycles per register streamed (cache tag
     * + write port occupancy beyond the raw access). */
    Cycles hwPerRegExtra = 1;
    /** Segmented/SW: trap entry + dispatch + return. */
    Cycles swTrapOverhead = 30;
    /** Segmented/SW: extra cycles per register moved by the handler
     * (address arithmetic and loop control around the ld/st). */
    Cycles swPerRegExtra = 2;
};

/** Statistics every organization maintains. */
struct RegFileStats
{
    stats::Counter reads;
    stats::Counter writes;
    stats::Counter readMisses;
    stats::Counter writeMisses;
    stats::Counter contextSwitches; //!< switchTo() calls
    stats::Counter switchMisses;    //!< switches to non-resident ctxs
    stats::Counter regsSpilled;     //!< registers pushed to memory
    stats::Counter regsReloaded;    //!< registers pulled from memory
    stats::Counter liveRegsSpilled; //!< ...of those, holding live data
    stats::Counter liveRegsReloaded;
    stats::Counter lineAllocs;
    stats::Counter lineEvictions;
    Cycles stallCycles = 0;

    /** Valid registers resident, weighted by access-op time. */
    stats::TimeWeightedMean activeRegs;
    /** Contexts with at least one resident register. */
    stats::TimeWeightedMean residentContexts;

    std::uint64_t
    accesses() const
    {
        return reads.value() + writes.value();
    }

    std::uint64_t
    misses() const
    {
        return readMisses.value() + writeMisses.value();
    }
};

/** Abstract register file. */
class RegisterFile
{
    friend struct ::nsrf::snapshot::SnapshotAccess;

  public:
    /**
     * @param total_regs physical registers in the file
     * @param backing    memory system for spills and reloads
     */
    RegisterFile(unsigned total_regs, mem::MemorySystem &backing);

    virtual ~RegisterFile() = default;

    RegisterFile(const RegisterFile &) = delete;
    RegisterFile &operator=(const RegisterFile &) = delete;

    /** Read register <cid:off> into @p value. */
    virtual AccessResult read(ContextId cid, RegIndex off,
                              Word &value) = 0;

    /** Write @p value to register <cid:off>. */
    virtual AccessResult write(ContextId cid, RegIndex off,
                               Word value) = 0;

    /**
     * Make @p cid the running context.  Free for the NSF; may spill
     * and reload a frame for segmented organizations.
     */
    virtual AccessResult switchTo(ContextId cid) = 0;

    /**
     * Register a new activation: binds the context's backing frame
     * address into the Ctable.  No registers are allocated yet.
     */
    virtual void allocContext(ContextId cid, Addr backing_frame) = 0;

    /**
     * Destroy an activation: resident registers are discarded without
     * writeback (the data is dead) and the name may be reused.
     */
    virtual void freeContext(ContextId cid) = 0;

    /**
     * Explicitly deallocate one register (paper §4.2).  Organizations
     * without fine-grain deallocation treat this as a no-op.
     */
    virtual AccessResult freeRegister(ContextId cid, RegIndex off);

    /**
     * Write every resident register of @p cid back to its backing
     * frame and release the context's resources, preserving the
     * values in memory.  This is the software operation a runtime
     * needs to *virtualize* the small hardware Context ID space
     * (paper §4.3 / [1]): after a flush, the CID can be reassigned
     * to a different activation, and the flushed activation can
     * later be rebound to any CID — its registers reload on demand
     * from the frame.
     */
    virtual AccessResult flushContext(ContextId cid) = 0;

    /**
     * Rebind a previously flushed activation to @p cid.  Unlike
     * allocContext, the backing frame already holds the
     * activation's architectural state, so misses must reload from
     * it rather than treat the context as fresh.
     */
    virtual void restoreContext(ContextId cid,
                                Addr backing_frame) = 0;

    /** @return a short description, e.g. "nsf(128x1,lru)". */
    virtual std::string describe() const = 0;

    /**
     * Cache hint that <cid:off> will be accessed soon.  Purely a
     * hint: implementations must not change any state, counter, or
     * result, so dropping the call is always bit-identical.  The
     * lane-interleaved sweep loop issues this for the next lane's
     * pending event while the current lane executes, overlapping the
     * likely cache misses of the tag probe and translation lookup.
     */
    virtual void
    prefetchHint(ContextId cid, RegIndex off) const
    {
        (void)cid;
        (void)off;
    }

    /** @return currently running context. */
    ContextId currentContext() const { return current_; }

    /** @return number of physical registers. */
    unsigned totalRegs() const { return totalRegs_; }

    /** Close time-weighted statistics; call once after a run. */
    void finalize();

    const RegFileStats &stats() const { return stats_; }

    /** Mean fraction of registers holding live data (Figure 9). */
    double meanUtilization() const;

    /** Peak fraction of registers holding live data (Figure 9). */
    double maxUtilization() const;

  protected:
    /** Advance the statistics clock by one operation. */
    std::uint64_t tick() { return ++clock_; }

    /** Record occupancy after it changed. */
    void
    noteOccupancy(std::uint64_t active_regs,
                  std::uint64_t resident_ctxs)
    {
        stats_.activeRegs.record(clock_, double(active_regs));
        stats_.residentContexts.record(clock_, double(resident_ctxs));
    }

    unsigned totalRegs_;
    mem::MemorySystem &backing_;
    ContextId current_ = invalidContext;
    RegFileStats stats_;
    std::uint64_t clock_ = 0;
};

/** Names for the register file organizations. */
enum class Organization
{
    Conventional,
    Segmented,
    NamedState,
    Windowed,
};

const char *organizationName(Organization org);

} // namespace nsrf::regfile

#endif // NSRF_REGFILE_REGFILE_HH
