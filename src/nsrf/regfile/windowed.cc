#include "nsrf/regfile/windowed.hh"

#include <algorithm>

#include "nsrf/common/logging.hh"
#include "nsrf/mem/memsys.hh"

namespace nsrf::regfile
{

WindowedRegisterFile::WindowedRegisterFile(
    const Config &config, mem::MemorySystem &backing)
    : RegisterFile(config.windows * config.regsPerWindow, backing),
      config_(config)
{
    nsrf_assert(config.windows > 0 && config.regsPerWindow > 0,
                "windowed file needs windows and registers");
    nsrf_assert(config.spillBatch > 0 &&
                    config.spillBatch <= config.windows,
                "spill batch must be 1..windows");
    windows_.resize(config.windows);
    for (auto &window : windows_)
        window.regs.assign(config.regsPerWindow, 0);
}

WindowedRegisterFile::ContextState &
WindowedRegisterFile::state(ContextId cid)
{
    auto it = contexts_.find(cid);
    nsrf_assert(it != contexts_.end(),
                "access to unallocated context %u", cid);
    return it->second;
}

bool
WindowedRegisterFile::resident(ContextId cid) const
{
    return residentWindow_.find(cid) != residentWindow_.end();
}

void
WindowedRegisterFile::spillWindow(std::size_t w, AccessResult &res)
{
    Window &window = windows_[w];
    nsrf_assert(window.inUse, "spilling an empty window");
    ContextState &ctx = state(window.cid);
    Addr base = ctable_.lookup(window.cid);

    // The trap handler stores the whole window; it has no
    // per-register valid bits.
    for (RegIndex off = 0; off < config_.regsPerWindow; ++off) {
        Cycles lat = backing_.writeWord(base + off * wordBytes,
                                        window.regs[off]);
        res.stall += lat + config_.perRegExtra;
        ++res.spilled;
        ++stats_.regsSpilled;
        if (ctx.live[off])
            ++stats_.liveRegsSpilled;
    }

    ctx.everSpilled = true;
    activeCount_ -= ctx.liveCount;
    residentWindow_.erase(window.cid);
    window.inUse = false;
    window.cid = invalidContext;
}

void
WindowedRegisterFile::overflowSpill(AccessResult &res)
{
    ++overflows_;
    res.stall += config_.trapOverhead;

    // Spill the oldest (deepest) resident activations, batch-wise.
    std::vector<std::size_t> in_use;
    for (std::size_t w = 0; w < windows_.size(); ++w) {
        if (windows_[w].inUse)
            in_use.push_back(w);
    }
    std::sort(in_use.begin(), in_use.end(),
              [&](std::size_t a, std::size_t b) {
                  return state(windows_[a].cid).order <
                         state(windows_[b].cid).order;
              });
    std::size_t count =
        std::min<std::size_t>(config_.spillBatch, in_use.size());
    for (std::size_t i = 0; i < count; ++i)
        spillWindow(in_use[i], res);
}

void
WindowedRegisterFile::loadWindow(std::size_t w, ContextId cid,
                                 AccessResult &res)
{
    Window &window = windows_[w];
    nsrf_assert(!window.inUse, "loading into an occupied window");
    ContextState &ctx = state(cid);

    if (ctx.everSpilled) {
        Addr base = ctable_.lookup(cid);
        for (RegIndex off = 0; off < config_.regsPerWindow; ++off) {
            Word value;
            Cycles lat =
                backing_.readWord(base + off * wordBytes, value);
            res.stall += lat + config_.perRegExtra;
            window.regs[off] = value;
            ++res.reloaded;
            ++stats_.regsReloaded;
            if (ctx.live[off])
                ++stats_.liveRegsReloaded;
        }
    }

    window.inUse = true;
    window.cid = cid;
    residentWindow_[cid] = w;
    activeCount_ += ctx.liveCount;
}

std::size_t
WindowedRegisterFile::acquireWindow(AccessResult &res)
{
    for (;;) {
        for (std::size_t w = 0; w < windows_.size(); ++w) {
            if (!windows_[w].inUse)
                return w;
        }
        overflowSpill(res);
    }
}

void
WindowedRegisterFile::ensureResident(ContextId cid,
                                     AccessResult &res)
{
    if (resident(cid))
        return;

    // Underflow (a return found its window spilled) or a thread
    // switch to a context with no window: trap and reload.
    ++underflows_;
    ++stats_.switchMisses;
    res.hit = false;
    res.stall += config_.trapOverhead;
    std::size_t w = acquireWindow(res);
    loadWindow(w, cid, res);
    updateOccupancy();
}

void
WindowedRegisterFile::allocContext(ContextId cid, Addr backing_frame)
{
    nsrf_assert(contexts_.find(cid) == contexts_.end(),
                "context %u is already allocated", cid);
    ContextState fresh;
    fresh.live.assign(config_.regsPerWindow, false);
    fresh.order = nextOrder_++;
    contexts_.emplace(cid, std::move(fresh));
    ctable_.set(cid, backing_frame);
}

void
WindowedRegisterFile::freeContext(ContextId cid)
{
    auto it = contexts_.find(cid);
    nsrf_assert(it != contexts_.end(),
                "freeing unallocated context %u", cid);
    auto res_it = residentWindow_.find(cid);
    if (res_it != residentWindow_.end()) {
        std::size_t w = res_it->second;
        activeCount_ -= it->second.liveCount;
        windows_[w].inUse = false;
        windows_[w].cid = invalidContext;
        residentWindow_.erase(res_it);
        updateOccupancy();
    }
    contexts_.erase(it);
    ctable_.clear(cid);
    if (current_ == cid)
        current_ = invalidContext;
}

void
WindowedRegisterFile::restoreContext(ContextId cid,
                                     Addr backing_frame)
{
    allocContext(cid, backing_frame);
    contexts_.at(cid).everSpilled = true;
}

AccessResult
WindowedRegisterFile::flushContext(ContextId cid)
{
    tick();
    AccessResult res;
    auto it = residentWindow_.find(cid);
    if (it != residentWindow_.end()) {
        res.stall += config_.trapOverhead;
        spillWindow(it->second, res);
    }
    contexts_.erase(cid);
    ctable_.clear(cid);
    if (current_ == cid)
        current_ = invalidContext;
    stats_.stallCycles += res.stall;
    updateOccupancy();
    return res;
}

AccessResult
WindowedRegisterFile::switchTo(ContextId cid)
{
    tick();
    ++stats_.contextSwitches;
    AccessResult res;
    ensureResident(cid, res);
    current_ = cid;
    stats_.stallCycles += res.stall;
    return res;
}

AccessResult
WindowedRegisterFile::read(ContextId cid, RegIndex off, Word &value)
{
    nsrf_assert(off < config_.regsPerWindow,
                "offset %u exceeds window size %u", off,
                config_.regsPerWindow);
    tick();
    ++stats_.reads;
    AccessResult res;
    ensureResident(cid, res);
    if (!res.hit)
        ++stats_.readMisses;
    value = windows_[residentWindow_[cid]].regs[off];
    stats_.stallCycles += res.stall;
    return res;
}

AccessResult
WindowedRegisterFile::write(ContextId cid, RegIndex off, Word value)
{
    nsrf_assert(off < config_.regsPerWindow,
                "offset %u exceeds window size %u", off,
                config_.regsPerWindow);
    tick();
    ++stats_.writes;
    AccessResult res;
    ensureResident(cid, res);
    if (!res.hit)
        ++stats_.writeMisses;

    ContextState &ctx = state(cid);
    windows_[residentWindow_[cid]].regs[off] = value;
    if (!ctx.live[off]) {
        ctx.live[off] = true;
        ++ctx.liveCount;
        ++activeCount_;
        updateOccupancy();
    }
    stats_.stallCycles += res.stall;
    return res;
}

void
WindowedRegisterFile::updateOccupancy()
{
    noteOccupancy(activeCount_, residentWindow_.size());
}

std::string
WindowedRegisterFile::describe() const
{
    return "windowed(" + std::to_string(config_.windows) + "x" +
           std::to_string(config_.regsPerWindow) + ",batch" +
           std::to_string(config_.spillBatch) + ")";
}

} // namespace nsrf::regfile
