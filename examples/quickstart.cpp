/**
 * @file
 * Quickstart: build a Named-State Register File, run registers from
 * several contexts through it, and watch what makes it different
 * from a conventional file.
 *
 * Build & run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/quickstart
 */

#include <cstdio>

#include "nsrf/mem/memsys.hh"
#include "nsrf/regfile/named_state.hh"

using namespace nsrf;

int
main()
{
    // A memory system backs the register file: spilled registers
    // land in the data cache, exactly as in the paper's Figure 4.
    mem::MemorySystem memsys;

    // A small NSF: 16 single-register lines, LRU replacement,
    // demand reload of single registers.
    regfile::NamedStateRegisterFile::Config config;
    config.lines = 16;
    config.regsPerLine = 1;
    config.maxRegsPerContext = 32;
    regfile::NamedStateRegisterFile nsf(config, memsys);

    std::printf("Built %s backed by a %u-KiB cache\n\n",
                nsf.describe().c_str(),
                memsys.cache()->config().sizeBytes / 1024);

    // Three concurrent activations share the file.  allocContext
    // binds each Context ID to a backing frame address (the Ctable
    // translation).
    for (ContextId cid = 0; cid < 3; ++cid)
        nsf.allocContext(cid, 0x10000 + cid * 0x100);

    // The first write to a register name allocates it; no frames,
    // no partitioning.
    for (ContextId cid = 0; cid < 3; ++cid) {
        for (RegIndex r = 0; r < 5; ++r)
            nsf.write(cid, r, cid * 100 + r);
    }
    std::printf("3 contexts x 5 registers resident: %zu of %u lines "
                "in use\n",
                nsf.decoder().validCount(), nsf.totalRegs());

    // Context switches move no data.
    auto sw = nsf.switchTo(2);
    std::printf("switchTo(2): %u spilled, %u reloaded, %llu stall "
                "cycles\n",
                sw.spilled, sw.reloaded,
                static_cast<unsigned long long>(sw.stall));

    // Fill the file from a fourth context; LRU lines spill
    // one register at a time.
    nsf.allocContext(3, 0x10300);
    for (RegIndex r = 0; r < 8; ++r)
        nsf.write(3, r, 300 + r);
    std::printf("after overcommit: %llu registers spilled "
                "(one per evicted line)\n",
                static_cast<unsigned long long>(
                    nsf.stats().regsSpilled.value()));

    // Spilled registers reload on demand - and keep their values.
    Word value = 0;
    auto res = nsf.read(0, 0, value);
    std::printf("read <0:0> after eviction: value=%u (%s, %u "
                "reloaded)\n",
                value, res.hit ? "hit" : "miss", res.reloaded);

    // Finished activations free their registers with no writeback.
    nsf.freeContext(1);
    std::printf("freeContext(1): file now holds %zu lines, "
                "still zero-cost to switch\n",
                nsf.decoder().validCount());

    nsf.finalize();
    std::printf("\nmean utilization %.0f%%, reloads %llu, "
                "spills %llu\n",
                nsf.meanUtilization() * 100.0,
                static_cast<unsigned long long>(
                    nsf.stats().regsReloaded.value()),
                static_cast<unsigned long long>(
                    nsf.stats().regsSpilled.value()));
    return 0;
}
