/**
 * @file
 * Scenario: VLSI cost exploration with the area/timing models.
 *
 * Sweeps register file shapes and port counts to answer the
 * implementation questions of the paper's §6: what does the
 * associative decoder cost as the file scales, and when does the
 * NSF overhead stop mattering?
 *
 * Build & run:
 *     ./build/examples/area_explorer
 */

#include <cstdio>

#include "nsrf/stats/table.hh"
#include "nsrf/vlsi/area.hh"
#include "nsrf/vlsi/timing.hh"

using namespace nsrf;

int
main()
{
    vlsi::AreaModel area;
    vlsi::TimingModel timing;

    std::printf("NSF vs segmented cost across file sizes "
                "(3-ported, 1-word lines)\n\n");
    {
        stats::TextTable table;
        table.header({"Lines x bits", "Seg area (Mum^2)",
                      "NSF area (Mum^2)", "NSF/Seg",
                      "Seg access (ns)", "NSF access (ns)",
                      "Penalty"});
        for (unsigned rows : {32u, 64u, 128u, 256u}) {
            auto seg = vlsi::Organization::segmented(rows, 32);
            auto nsf = vlsi::Organization::namedState(rows, 32, 1);
            double seg_area = area.estimate(seg).totalUm2() / 1e6;
            double nsf_area = area.estimate(nsf).totalUm2() / 1e6;
            double seg_ns = timing.estimate(seg).totalNs();
            double nsf_ns = timing.estimate(nsf).totalNs();
            table.row({std::to_string(rows) + "x32",
                       stats::TextTable::num(seg_area),
                       stats::TextTable::num(nsf_area),
                       stats::TextTable::num(nsf_area / seg_area, 2),
                       stats::TextTable::num(seg_ns),
                       stats::TextTable::num(nsf_ns),
                       stats::TextTable::percent(
                           nsf_ns / seg_ns - 1.0, 1)});
        }
        std::printf("%s\n", table.render().c_str());
    }

    std::printf("Port scaling at 128x32 (the superscalar "
                "question, paper Figures 7-8)\n\n");
    {
        stats::TextTable table;
        table.header({"Read+write ports", "Seg area (Mum^2)",
                      "NSF area (Mum^2)", "NSF/Seg"});
        for (unsigned ports = 3; ports <= 9; ports += 2) {
            unsigned writes = ports / 3;
            unsigned reads = ports - writes;
            auto seg = vlsi::Organization::segmented(128, 32, reads,
                                                     writes);
            auto nsf = vlsi::Organization::namedState(
                128, 32, 1, reads, writes);
            double seg_area = area.estimate(seg).totalUm2() / 1e6;
            double nsf_area = area.estimate(nsf).totalUm2() / 1e6;
            table.row({std::to_string(reads) + "R+" +
                           std::to_string(writes) + "W",
                       stats::TextTable::num(seg_area),
                       stats::TextTable::num(nsf_area),
                       stats::TextTable::num(nsf_area / seg_area,
                                             2)});
        }
        std::printf("%s\n", table.render().c_str());
    }

    std::printf("Line width vs decoder cost at 128 registers "
                "(3-ported)\n\n");
    {
        stats::TextTable table;
        table.header({"Regs/line", "Lines", "Tag bits",
                      "Decoder (Mum^2)", "Total (Mum^2)"});
        for (unsigned width : {1u, 2u, 4u}) {
            unsigned rows = 128 / width;
            auto nsf = vlsi::Organization::namedState(
                rows, 32 * width, width);
            auto a = area.estimate(nsf);
            table.row({std::to_string(width), std::to_string(rows),
                       std::to_string(nsf.tagBits()),
                       stats::TextTable::num(a.decodeUm2 / 1e6),
                       stats::TextTable::num(a.totalUm2() / 1e6)});
        }
        std::printf("%s\n", table.render().c_str());
    }

    std::printf("Wider lines shrink the decoder, but Figure 13 "
                "shows they multiply reload\ntraffic - the paper "
                "concludes single-word lines earn their area.\n");
    return 0;
}
