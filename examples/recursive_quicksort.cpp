/**
 * @file
 * Scenario: a real recursive program on the cycle-level processor.
 *
 * Assembles the SRISC quicksort (one context per activation — the
 * sequential programming model of the paper's §4.3), runs it on
 * each register file organization, verifies the array is sorted,
 * and shows where the cycles went.
 *
 * Build & run:
 *     ./build/examples/recursive_quicksort
 */

#include <cstdio>

#include "nsrf/cpu/processor.hh"
#include "nsrf/isa/isa.hh"
#include "nsrf/mem/memsys.hh"
#include "nsrf/regfile/factory.hh"
#include "nsrf/stats/table.hh"
#include "nsrf/workload/programs.hh"

using namespace nsrf;

int
main()
{
    auto program = workload::programs::assembleOrDie(
        workload::programs::quicksortSource);

    std::printf("Assembled quicksort: %u words.  Entry code:\n",
                program.size());
    for (Addr pc = program.entry;
         pc < program.entry + 6 && pc < program.size(); ++pc) {
        std::printf("  %3u: %s\n", pc,
                    isa::disassemble(program.fetch(pc)).c_str());
    }
    std::printf("\n");

    stats::TextTable table;
    table.header({"Register file", "Instr", "Cycles", "CPI",
                  "Reg stalls", "Ctx switches", "Sorted?"});

    for (auto org : {regfile::Organization::NamedState,
                     regfile::Organization::Segmented,
                     regfile::Organization::Conventional}) {
        mem::MemorySystem memsys;
        regfile::RegFileConfig config;
        config.org = org;
        config.totalRegs = 128;
        config.regsPerContext = 32;
        auto rf = regfile::makeRegisterFile(config, memsys);

        cpu::Processor proc(program, *rf, memsys);
        const auto &stats = proc.run();

        bool sorted = true;
        Addr base = workload::programs::quicksortArrayAddr;
        for (unsigned i = 1;
             i < workload::programs::quicksortArrayLen; ++i) {
            sorted = sorted && memsys.peek(base + 4 * (i - 1)) <=
                                   memsys.peek(base + 4 * i);
        }

        table.row({rf->describe(),
                   stats::TextTable::integer(stats.instructions),
                   stats::TextTable::integer(stats.cycles),
                   stats::TextTable::num(stats.cpi(), 2),
                   stats::TextTable::integer(stats.regStallCycles),
                   stats::TextTable::integer(stats.contextSwitches),
                   sorted ? "yes" : "NO"});
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("Each CTXCALL allocates a fresh context; RET frees "
                "it.  The NSF keeps the\nwhole call chain resident, "
                "so recursion costs no register traffic at all.\n");
    return 0;
}
