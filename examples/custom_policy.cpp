/**
 * @file
 * Scenario: exploring NSF design points through the public
 * configuration surface — line sizes, miss policies, write
 * policies, and replacement strategies — on one workload.
 *
 * This is the experiment a designer would run before committing to
 * a line width (the paper's §7.3 question).
 *
 * Build & run:
 *     ./build/examples/custom_policy
 */

#include <cstdio>

#include "nsrf/sim/simulator.hh"
#include "nsrf/stats/table.hh"
#include "nsrf/workload/parallel.hh"
#include "nsrf/workload/profile.hh"

using namespace nsrf;

namespace
{

sim::RunResult
runConfig(unsigned regs_per_line, regfile::MissPolicy miss,
          regfile::WritePolicy write, cam::ReplacementKind repl)
{
    const auto &profile = workload::profileByName("Gamteb");
    workload::ParallelWorkload gen(profile, 200'000);

    sim::SimConfig config;
    config.rf.org = regfile::Organization::NamedState;
    config.rf.totalRegs = 128;
    config.rf.regsPerContext = 32;
    config.rf.regsPerLine = regs_per_line;
    config.rf.missPolicy = miss;
    config.rf.writePolicy = write;
    config.rf.replacement = repl;
    return sim::runTrace(config, gen);
}

} // namespace

int
main()
{
    std::printf("NSF design-point exploration on the Gamteb "
                "workload (128 registers)\n\n");

    stats::TextTable table;
    table.header({"Configuration", "Reloads/instr", "Spills/instr",
                  "Utilization", "Overhead"});

    struct Point
    {
        const char *label;
        unsigned line;
        regfile::MissPolicy miss;
        regfile::WritePolicy write;
        cam::ReplacementKind repl;
    };
    const Point points[] = {
        {"1-word lines, single reload (paper)", 1,
         regfile::MissPolicy::ReloadSingle,
         regfile::WritePolicy::WriteAllocate,
         cam::ReplacementKind::Lru},
        {"2-word lines, single reload", 2,
         regfile::MissPolicy::ReloadSingle,
         regfile::WritePolicy::WriteAllocate,
         cam::ReplacementKind::Lru},
        {"4-word lines, live reload", 4,
         regfile::MissPolicy::ReloadLive,
         regfile::WritePolicy::WriteAllocate,
         cam::ReplacementKind::Lru},
        {"4-word lines, full-line reload", 4,
         regfile::MissPolicy::ReloadLine,
         regfile::WritePolicy::WriteAllocate,
         cam::ReplacementKind::Lru},
        {"4-word lines, fetch-on-write", 4,
         regfile::MissPolicy::ReloadLive,
         regfile::WritePolicy::FetchOnWrite,
         cam::ReplacementKind::Lru},
        {"1-word lines, FIFO victims", 1,
         regfile::MissPolicy::ReloadSingle,
         regfile::WritePolicy::WriteAllocate,
         cam::ReplacementKind::Fifo},
        {"1-word lines, random victims", 1,
         regfile::MissPolicy::ReloadSingle,
         regfile::WritePolicy::WriteAllocate,
         cam::ReplacementKind::Random},
    };

    for (const auto &point : points) {
        auto r = runConfig(point.line, point.miss, point.write,
                           point.repl);
        table.row({point.label,
                   stats::TextTable::scientific(
                       r.reloadsPerInstr()),
                   stats::TextTable::scientific(
                       double(r.regsSpilled) /
                       double(r.instructions)),
                   stats::TextTable::percent(r.meanUtilization, 0),
                   stats::TextTable::percent(
                       r.overheadFraction())});
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("Single-word lines with demand reload are the "
                "paper's design point: every widening\nof the line "
                "or the reload unit buys bandwidth waste without "
                "helping hit rate.\n");
    return 0;
}
