/**
 * @file
 * Scenario: the trace-once, replay-everywhere workflow (how the
 * paper's own evaluation was run: traces cross-compiled once, then
 * replayed against every register file organization).
 *
 * Captures a Gamteb trace to a binary file, replays it against
 * four organizations, and prints a gem5-style statistics dump for
 * the winner.
 *
 * Build & run:
 *     ./build/examples/trace_workflow
 */

#include <cstdio>
#include <string>

#include "nsrf/regfile/statsdump.hh"
#include "nsrf/sim/simulator.hh"
#include "nsrf/sim/tracefile.hh"
#include "nsrf/stats/table.hh"
#include "nsrf/workload/parallel.hh"
#include "nsrf/workload/profile.hh"

using namespace nsrf;

int
main()
{
    const char *path = "/tmp/nsrf_example_gamteb.trc";
    const auto &profile = workload::profileByName("Gamteb");

    // Capture once.
    workload::ParallelWorkload gen(profile, 120'000);
    std::uint64_t events = sim::captureTrace(gen, path);
    std::printf("captured %llu events of %s to %s\n\n",
                static_cast<unsigned long long>(events),
                profile.name.c_str(), path);

    // Replay against every organization - bit-identical input.
    stats::TextTable table;
    table.header({"Organization", "Cycles", "Reloads/instr",
                  "Overhead"});
    for (auto org : {regfile::Organization::NamedState,
                     regfile::Organization::Segmented,
                     regfile::Organization::Windowed,
                     regfile::Organization::Conventional}) {
        sim::FileTraceGenerator replay(path);
        sim::SimConfig config;
        config.rf.org = org;
        config.rf.totalRegs = 128;
        config.rf.regsPerContext = 32;
        auto r = sim::runTrace(config, replay);
        table.row({r.regfileDescription,
                   stats::TextTable::integer(r.cycles),
                   stats::TextTable::scientific(
                       r.reloadsPerInstr()),
                   stats::TextTable::percent(r.overheadFraction())});
    }
    std::printf("%s\n", table.render().c_str());

    // Full statistics for the NSF run, gem5 style.
    sim::FileTraceGenerator replay(path);
    sim::SimConfig config;
    config.rf.org = regfile::Organization::NamedState;
    config.rf.totalRegs = 128;
    config.rf.regsPerContext = 32;
    sim::TraceSimulator simulator(config);
    simulator.run(replay);
    regfile::dumpStats(simulator.registerFile(), stdout,
                       "system.rf");

    std::remove(path);
    return 0;
}
