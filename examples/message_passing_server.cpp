/**
 * @file
 * Scenario: a fine-grain message-passing node (the workload the
 * paper's introduction motivates: "Fine grain programs send
 * messages every 75 to 100 instructions, each of which may require
 * a round trip latency of more than 100 instruction cycles").
 *
 * A pool of handler threads processes requests; each handler
 * performs a couple of remote accesses per request and blocks for
 * the round trip, so the processor switches constantly.  The same
 * trace runs against every register file organization to show what
 * the context-switch machinery costs end to end.
 *
 * Build & run:
 *     ./build/examples/message_passing_server
 */

#include <cstdio>

#include "nsrf/sim/simulator.hh"
#include "nsrf/stats/table.hh"
#include "nsrf/workload/parallel.hh"

using namespace nsrf;

namespace
{

workload::BenchmarkProfile
serverProfile()
{
    // A message-passing server in the paper's §2 terms: a handler
    // runs ~80 instructions between suspension points, keeps ~20
    // live values, and handlers come and go as requests complete.
    workload::BenchmarkProfile profile;
    profile.name = "msg-server";
    profile.parallel = true;
    profile.executedInstructions = 400'000;
    profile.tableInstrPerSwitch = 80;
    profile.instrPerSwitch = 80;
    profile.regsPerContext = 32;
    profile.avgLiveRegs = 20;
    profile.targetThreads = 7;
    profile.threadLifetime = 2'500; // one request's worth of work
    profile.coldSwitchFraction = 0.15;
    profile.memRefFraction = 0.35;
    profile.seed = 777;
    return profile;
}

} // namespace

int
main()
{
    auto profile = serverProfile();
    std::printf("Message-passing server: %u handler threads, one "
                "suspension every ~%.0f instructions\n\n",
                profile.targetThreads, profile.instrPerSwitch);

    stats::TextTable table;
    table.header({"Register file", "Cycles", "CPI",
                  "Switch stalls", "Regs moved", "Overhead"});

    Cycles nsf_cycles = 0, seg_cycles = 0;
    for (auto org : {regfile::Organization::NamedState,
                     regfile::Organization::Segmented,
                     regfile::Organization::Conventional}) {
        workload::ParallelWorkload gen(profile);
        sim::SimConfig config;
        config.rf.org = org;
        config.rf.totalRegs = 128;
        config.rf.regsPerContext = 32;
        auto r = sim::runTrace(config, gen);

        if (org == regfile::Organization::NamedState)
            nsf_cycles = r.cycles;
        if (org == regfile::Organization::Segmented)
            seg_cycles = r.cycles;

        table.row({r.regfileDescription,
                   stats::TextTable::integer(r.cycles),
                   stats::TextTable::num(double(r.cycles) /
                                             double(r.instructions),
                                         2),
                   stats::TextTable::integer(r.regStallCycles),
                   stats::TextTable::integer(r.regsReloaded +
                                             r.regsSpilled),
                   stats::TextTable::percent(r.overheadFraction())});
    }
    std::printf("%s\n", table.render().c_str());

    double speedup =
        (double(seg_cycles) - double(nsf_cycles)) /
        double(seg_cycles) * 100.0;
    std::printf("The NSF runs this server %.1f%% faster than the "
                "segmented file\n(the paper reports 9-17%% across "
                "its benchmark suite).\n",
                speedup);
    return 0;
}
