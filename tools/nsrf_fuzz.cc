/**
 * @file
 * Differential fuzzer for the register file organizations.
 *
 * Each seed deterministically selects a configuration from a fixed
 * matrix and generates a random op stream; the stream runs against
 * the Oracle golden model with a full structural audit after every
 * operation (check/fuzz.hh).  On failure the seed is printed, the
 * stream is shrunk to a minimal reproducer, and the reproducer is
 * written as a standalone trace file.
 *
 *   nsrf_fuzz                         # default batch of seeds
 *   nsrf_fuzz --seed 17 --runs 100    # a specific seed range
 *   nsrf_fuzz --duration 30 --jobs 0  # time-boxed, all cores
 *   nsrf_fuzz --replay 17             # deterministic re-run of 17
 *   nsrf_fuzz --run-trace repro.trace # execute a reproducer
 *   nsrf_fuzz --inject skip-dirty     # prove the checks bite
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "nsrf/check/fuzz.hh"
#include "nsrf/common/options.hh"
#include "nsrf/sim/sweep.hh"

namespace
{

using namespace nsrf;

struct Options
{
    std::uint64_t seed = 1;
    unsigned runs = 50;
    unsigned ops = 2000;
    unsigned jobs = 1;
    unsigned durationSec = 0;  //!< 0 = run exactly `runs` seeds
    unsigned snapshotEvery = 0; //!< checkpoint/restore every N ops
    bool replay = false;
    bool verbose = false;
    check::Injection inject = check::Injection::None;
    std::string orgFilter;     //!< empty = all organizations
    std::string traceOut;
    std::string runTrace;
};

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --runs N        seeds to run (default 50)\n"
        "  --seed S        first seed (default 1)\n"
        "  --replay S      re-run exactly seed S (then shrink on\n"
        "                  failure); deterministic\n"
        "  --ops N         ops per seed (default 2000)\n"
        "  --jobs N        parallel workers (default 1, 0 = all\n"
        "                  hardware threads)\n"
        "  --duration SEC  keep starting seeds until SEC elapsed\n"
        "  --snapshot-every N  every N executed ops, snapshot the\n"
        "                  register file, restore it into a fresh\n"
        "                  one, and continue on the restored file\n"
        "  --inject NAME   none | skip-dirty (restricts seeds to\n"
        "                  nsf configurations)\n"
        "  --org NAME      only seeds with this organization\n"
        "                  (conventional|segmented|nsf|windowed)\n"
        "  --trace-out F   reproducer path (default\n"
        "                  nsrf-fuzz-repro-<seed>.trace)\n"
        "  --run-trace F   execute a reproducer trace file\n"
        "  --verbose       print every executed op\n",
        argv0);
}

bool
parseOptions(int argc, char **argv, Options *opts)
{
    common::OptionScanner scan(argc, argv);
    while (scan.next()) {
        if (scan.is("--help") || scan.is("-h")) {
            usage(argv[0]);
            std::exit(0);
        } else if (scan.is("--runs")) {
            opts->runs = scan.u32();
        } else if (scan.is("--seed")) {
            opts->seed = scan.u64();
        } else if (scan.is("--replay")) {
            opts->seed = scan.u64();
            opts->replay = true;
        } else if (scan.is("--ops")) {
            opts->ops = scan.u32();
        } else if (scan.is("--jobs")) {
            opts->jobs = scan.u32();
        } else if (scan.is("--duration")) {
            opts->durationSec = scan.u32();
        } else if (scan.is("--snapshot-every")) {
            opts->snapshotEvery = scan.u32();
        } else if (scan.is("--inject")) {
            const char *value = scan.value();
            if (!check::parseInjection(value, &opts->inject)) {
                std::fprintf(stderr, "unknown injection '%s'\n",
                             value);
                return false;
            }
        } else if (scan.is("--org")) {
            opts->orgFilter = scan.value();
        } else if (scan.is("--trace-out")) {
            opts->traceOut = scan.value();
        } else if (scan.is("--run-trace")) {
            opts->runTrace = scan.value();
        } else if (scan.is("--verbose")) {
            opts->verbose = true;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n",
                         scan.arg().c_str());
            usage(argv[0]);
            return false;
        }
    }
    if (opts->ops == 0 || opts->runs == 0) {
        std::fprintf(stderr, "--ops and --runs must be positive\n");
        return false;
    }
    return true;
}

/** Does seed's configuration pass the CLI filters? */
bool
seedSelected(const Options &opts, std::uint64_t seed)
{
    check::FuzzConfig config = check::configForSeed(seed);
    if (!opts.orgFilter.empty() &&
        opts.orgFilter !=
            regfile::organizationName(config.rf.org)) {
        return false;
    }
    // Injection only bites the NSF; fuzzing other organizations
    // with it would report spurious "passes".
    if (opts.inject != check::Injection::None &&
        config.rf.org != regfile::Organization::NamedState) {
        return false;
    }
    return true;
}

check::FuzzConfig
configFor(const Options &opts, std::uint64_t seed)
{
    check::FuzzConfig config = check::configForSeed(seed);
    config.opCount = opts.ops;
    config.snapshotEvery = opts.snapshotEvery;
    config.inject = opts.inject;
    return config;
}

/** Shrink a failing seed and write its reproducer trace. */
void
reportFailure(const Options &opts, std::uint64_t seed,
              const check::FuzzResult &result)
{
    check::FuzzConfig config = configFor(opts, seed);
    std::printf("\nFAILURE at seed %llu: %s\n",
                static_cast<unsigned long long>(seed),
                result.reason.c_str());
    std::printf("  config: %s\n",
                check::describeConfig(config).c_str());
    std::printf("  replay: nsrf_fuzz --replay %llu --ops %u%s%s%s\n",
                static_cast<unsigned long long>(seed), opts.ops,
                opts.inject != check::Injection::None
                    ? " --inject "
                    : "",
                opts.inject != check::Injection::None
                    ? check::injectionName(opts.inject)
                    : "",
                "");

    std::printf("  shrinking...\n");
    std::vector<check::FuzzOp> minimal =
        check::shrinkOps(config, check::generateOps(config));
    check::FuzzResult small = check::runOps(config, minimal);
    std::printf("  minimal reproducer: %zu ops (%s)\n",
                minimal.size(), small.reason.c_str());
    for (std::size_t i = 0; i < minimal.size(); ++i) {
        std::printf("    %s %u %u 0x%08x\n",
                    check::opKindName(minimal[i].kind),
                    unsigned(minimal[i].slot), minimal[i].off,
                    minimal[i].value);
    }

    std::string path = opts.traceOut;
    if (path.empty()) {
        path = "nsrf-fuzz-repro-" + std::to_string(seed) + ".trace";
    }
    if (check::writeTextFile(path,
                             check::opsToTrace(config, minimal))) {
        std::printf("  reproducer written: %s\n", path.c_str());
        std::printf("  re-run it: nsrf_fuzz --run-trace %s\n",
                    path.c_str());
    } else {
        std::fprintf(stderr, "  cannot write reproducer to %s\n",
                     path.c_str());
    }
}

/** Run a batch of seeds (possibly in parallel); report in order. */
bool
runBatch(const Options &opts,
         const std::vector<std::uint64_t> &seeds)
{
    std::vector<check::FuzzResult> results(seeds.size());
    sim::parallelFor(
        opts.jobs == 0 ? 0 : opts.jobs, seeds.size(),
        [&](std::size_t i) {
            check::FuzzConfig config = configFor(opts, seeds[i]);
            results[i] = check::runOps(
                config, check::generateOps(config),
                opts.verbose && seeds.size() == 1);
        });

    bool ok = true;
    for (std::size_t i = 0; i < seeds.size(); ++i) {
        check::FuzzConfig config = configFor(opts, seeds[i]);
        std::printf("seed %llu: %s: %llu/%u ops: %s\n",
                    static_cast<unsigned long long>(seeds[i]),
                    check::describeConfig(config).c_str(),
                    static_cast<unsigned long long>(
                        results[i].executed),
                    opts.ops,
                    results[i].failed ? "FAIL" : "ok");
        if (results[i].failed && ok) {
            ok = false;
            reportFailure(opts, seeds[i], results[i]);
        }
    }
    return ok;
}

int
runTraceFile(const Options &opts)
{
    std::string text;
    if (!check::readTextFile(opts.runTrace, &text)) {
        std::fprintf(stderr, "cannot read trace '%s'\n",
                     opts.runTrace.c_str());
        return 2;
    }
    check::FuzzConfig config;
    std::vector<check::FuzzOp> ops;
    std::string err;
    if (!check::traceToOps(text, &config, &ops, &err)) {
        std::fprintf(stderr, "%s: %s\n", opts.runTrace.c_str(),
                     err.c_str());
        return 2;
    }
    std::printf("trace %s: %zu ops, %s\n", opts.runTrace.c_str(),
                ops.size(), check::describeConfig(config).c_str());
    check::FuzzResult result =
        check::runOps(config, ops, opts.verbose);
    if (result.failed) {
        std::printf("FAIL at op %zu: %s\n", result.opIndex,
                    result.reason.c_str());
        return 1;
    }
    std::printf("ok: %llu/%zu ops executed\n",
                static_cast<unsigned long long>(result.executed),
                ops.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    if (!parseOptions(argc, argv, &opts))
        return 2;

    if (!opts.runTrace.empty())
        return runTraceFile(opts);

    if (opts.replay) {
        std::printf("replaying seed %llu\n",
                    static_cast<unsigned long long>(opts.seed));
        return runBatch(opts, {opts.seed}) ? 0 : 1;
    }

    // Collect seeds passing the filters.  The scan is bounded: one
    // pass over the whole configuration matrix per requested run
    // finds a match if the filter can ever match.
    auto collect = [&](std::uint64_t from, unsigned count,
                       std::vector<std::uint64_t> *out) {
        std::uint64_t seed = from;
        std::uint64_t limit =
            from + (std::uint64_t(count) + 1) *
                       check::configMatrixSize();
        while (out->size() < count && seed < limit) {
            if (seedSelected(opts, seed))
                out->push_back(seed);
            ++seed;
        }
        return seed;
    };

    if (opts.durationSec > 0) {
        auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::seconds(opts.durationSec);
        std::uint64_t next = opts.seed;
        unsigned batch =
            std::max(1u, (opts.jobs == 0
                              ? sim::SweepRunner::hardwareJobs()
                              : opts.jobs)) *
            4;
        std::uint64_t total = 0;
        while (std::chrono::steady_clock::now() < deadline) {
            std::vector<std::uint64_t> seeds;
            next = collect(next, batch, &seeds);
            if (seeds.empty()) {
                std::fprintf(stderr,
                             "no seed matches the filters\n");
                return 2;
            }
            if (!runBatch(opts, seeds))
                return 1;
            total += seeds.size();
        }
        std::printf("fuzzed %llu seeds in %u s: all ok\n",
                    static_cast<unsigned long long>(total),
                    opts.durationSec);
        return 0;
    }

    std::vector<std::uint64_t> seeds;
    collect(opts.seed, opts.runs, &seeds);
    if (seeds.empty()) {
        std::fprintf(stderr, "no seed matches the filters\n");
        return 2;
    }
    return runBatch(opts, seeds) ? 0 : 1;
}
