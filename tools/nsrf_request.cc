/**
 * @file
 * nsrf_request: command-line client for the nsrf_serve daemon.
 *
 * Builds one protocol request (serve/server.hh), sends it over the
 * daemon's Unix domain socket (--socket) or a fleet node's TCP
 * listener (--connect), and prints the reply.  Submit replies are
 * printed one stable line per cell — the line depends only on the
 * simulation result, never on how it was served — so a cold run, a
 * warm (cache-served) run, and a peer-filled fleet run of the same
 * request byte-compare equal; the cached/merged/rejected summary
 * goes to stderr.
 *
 * Transient failures (connect refused, short read, a shed or
 * quota-rejected reply carrying retryAfterMs) are retried up to
 * --retries times with exponential backoff and deterministic
 * jitter: the delay sequence is a pure function of --retry-seed,
 * so a scripted run is reproducible.
 *
 *     nsrf_request --socket /tmp/nsrf.sock --op ping
 *     nsrf_request --socket /tmp/nsrf.sock --app all --events 20000
 *     nsrf_request --connect 127.0.0.1:7101 --client sweep1 --app all
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <unistd.h>

#include "nsrf/common/counter_random.hh"
#include "nsrf/common/logging.hh"
#include "nsrf/common/options.hh"
#include "nsrf/fleet/net.hh"
#include "nsrf/serve/json_in.hh"
#include "nsrf/serve/spec.hh"
#include "nsrf/stats/json.hh"

using namespace nsrf;

namespace
{

struct Options
{
    std::string socket;
    std::string connect; //!< HOST:PORT alternative to --socket
    std::string op = "submit";
    std::string fingerprint; //!< for --op query
    std::string client;      //!< quota identity ("" = anonymous)
    unsigned timeoutMs = 120'000;
    unsigned retries = 3;       //!< attempts beyond the first
    unsigned retryBaseMs = 50;  //!< first backoff step
    unsigned retryCapMs = 2'000; //!< backoff ceiling
    std::uint64_t retrySeed = 0; //!< jitter stream seed
    serve::CellParams cell;
};

void
usage()
{
    std::puts(
        "usage: nsrf_request --socket PATH [options]\n"
        "       nsrf_request --connect HOST:PORT [options]\n"
        "  --op submit|ping|query|stats|metrics|ring|shutdown\n"
        "  --fingerprint HEX      cache key for --op query\n"
        "  --client NAME          quota identity for fleet nodes\n"
        "  --timeout-ms N         reply wait bound (default 120000)\n"
        "  --retries N            extra attempts on transient\n"
        "                         failure (default 3)\n"
        "  --retry-base-ms N      first backoff delay (default 50)\n"
        "  --retry-cap-ms N       backoff ceiling (default 2000)\n"
        "  --retry-seed N         jitter seed; fixed seed = fixed\n"
        "                         delay sequence (default 0)\n"
        "submit cell flags (defaults match nsrf_sim):\n"
        "  --app NAME|all --org nsf|segmented|conventional|windowed\n"
        "  --regs N --line W --miss single|live|line --write wa|fow\n"
        "  --repl lru|fifo|random --mech hw|sw --valid --bg\n"
        "  --events N --seed N");
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    common::OptionScanner scan(argc, argv);
    while (scan.next()) {
        if (scan.is("--socket")) {
            opt.socket = scan.value();
        } else if (scan.is("--connect")) {
            opt.connect = scan.value();
        } else if (scan.is("--op")) {
            opt.op = scan.value();
        } else if (scan.is("--fingerprint")) {
            opt.fingerprint = scan.value();
        } else if (scan.is("--client")) {
            opt.client = scan.value();
        } else if (scan.is("--timeout-ms")) {
            opt.timeoutMs = scan.u32();
        } else if (scan.is("--retries")) {
            opt.retries = scan.u32();
        } else if (scan.is("--retry-base-ms")) {
            opt.retryBaseMs = scan.u32();
        } else if (scan.is("--retry-cap-ms")) {
            opt.retryCapMs = scan.u32();
        } else if (scan.is("--retry-seed")) {
            opt.retrySeed = scan.u64();
        } else if (scan.is("--app")) {
            opt.cell.app = scan.value();
        } else if (scan.is("--org")) {
            const char *value = scan.value();
            if (!serve::parseOrganization(value, &opt.cell.org)) {
                std::fprintf(stderr, "unknown org '%s'\n", value);
                return false;
            }
        } else if (scan.is("--regs")) {
            opt.cell.totalRegs = scan.u32();
        } else if (scan.is("--line")) {
            opt.cell.regsPerLine = scan.u32();
        } else if (scan.is("--miss")) {
            const char *value = scan.value();
            if (!serve::parseMissPolicy(value, &opt.cell.miss)) {
                std::fprintf(stderr, "unknown miss policy '%s'\n",
                             value);
                return false;
            }
        } else if (scan.is("--write")) {
            const char *value = scan.value();
            if (!serve::parseWritePolicy(value, &opt.cell.write)) {
                std::fprintf(stderr, "unknown write policy '%s'\n",
                             value);
                return false;
            }
        } else if (scan.is("--repl")) {
            const char *value = scan.value();
            if (!cam::tryParseReplacement(value, &opt.cell.repl)) {
                std::fprintf(stderr,
                             "unknown replacement policy '%s'\n",
                             value);
                return false;
            }
        } else if (scan.is("--mech")) {
            const char *value = scan.value();
            if (!serve::parseMechanism(value, &opt.cell.mech)) {
                std::fprintf(stderr, "unknown mechanism '%s'\n",
                             value);
                return false;
            }
        } else if (scan.is("--valid")) {
            opt.cell.trackValid = true;
        } else if (scan.is("--bg")) {
            opt.cell.background = true;
        } else if (scan.is("--events")) {
            opt.cell.events = scan.u64();
        } else if (scan.is("--seed")) {
            opt.cell.seed = scan.u64();
        } else if (scan.is("--help") || scan.is("-h")) {
            usage();
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n",
                         scan.arg().c_str());
            return false;
        }
    }
    return true;
}

std::string
buildRequest(const Options &opt)
{
    stats::JsonWriter json;
    json.beginObject();
    json.field("op", opt.op);
    if (opt.op == "submit") {
        if (!opt.client.empty())
            json.field("client", opt.client);
        const serve::CellParams &c = opt.cell;
        json.key("cells").beginArray();
        json.beginObject();
        json.field("app", c.app);
        json.field("org", regfile::organizationName(c.org));
        if (c.totalRegs)
            json.field("regs", c.totalRegs);
        json.field("line", c.regsPerLine);
        json.field("miss", serve::missPolicyName(c.miss));
        json.field("write", serve::writePolicyName(c.write));
        json.field("repl", cam::replacementName(c.repl));
        json.field("mech", serve::mechanismName(c.mech));
        json.field("valid", c.trackValid);
        json.field("bg", c.background);
        json.field("events", c.events);
        if (c.seed)
            json.field("seed", c.seed);
        json.endObject();
        json.endArray();
    } else if (opt.op == "query") {
        json.field("fingerprint", opt.fingerprint);
    }
    json.endObject();
    return json.str();
}

/** One round trip: connect, send @p request, read one reply line. */
bool
attemptExchange(const Options &opt, const std::string &request,
                std::string *reply, std::string *why)
{
    auto deadline = fleet::net::deadlineIn(opt.timeoutMs);
    int fd = -1;
    if (!opt.connect.empty()) {
        std::string host;
        std::uint16_t port = 0;
        if (!fleet::net::parseHostPort(opt.connect, &host, &port,
                                       why)) {
            return false;
        }
        fd = fleet::net::connectTcp(host, port, deadline, why);
    } else {
        fd = fleet::net::connectUnix(opt.socket, deadline, why);
    }
    if (fd < 0)
        return false;

    bool ok =
        fleet::net::sendAll(fd, request + "\n", deadline, why);
    std::string buffer;
    if (ok) {
        ok = fleet::net::recvLine(fd, &buffer, reply, 64u << 20,
                                  deadline, why);
    }
    ::close(fd);
    return ok;
}

/**
 * attemptExchange with bounded retry.  Transport-level failures
 * back off exponentially (base * 2^attempt, capped) plus a
 * CounterRandom jitter drawn from --retry-seed; a parsed reply that
 * carries retryAfterMs (quota or load shed) waits at least that
 * long.  Every delay is deterministic under a fixed seed.
 */
bool
exchange(const Options &opt, const std::string &request,
         std::string *reply)
{
    CounterRandom jitter(opt.retrySeed, rngstream::clientRetry);
    for (unsigned attempt = 0;; ++attempt) {
        std::string why;
        if (attemptExchange(opt, request, reply, &why)) {
            // A structured retry-after (shed/quota) is transient
            // too: honor the server's hint, then try again.
            serve::json::Value parsed;
            std::string parseWhy;
            double after = 0.0;
            if (serve::json::parse(*reply, &parsed, &parseWhy) &&
                !parsed.getBool("ok", false)) {
                after = parsed.getNumber("retryAfterMs", 0.0);
            }
            if (after <= 0.0)
                return true;
            if (attempt >= opt.retries)
                return true; // caller prints the server's error
            why = "server asked to retry after " +
                  std::to_string(static_cast<unsigned>(after)) +
                  "ms";
            unsigned floorMs = static_cast<unsigned>(std::min(
                after, 3.6e6)); // clamp absurd hints to an hour
            unsigned backoff = std::min<unsigned>(
                opt.retryCapMs,
                opt.retryBaseMs << std::min(attempt, 16u));
            unsigned delay = std::max(floorMs, backoff);
            delay += static_cast<unsigned>(
                jitter.uniform(delay / 2 + 1));
            std::fprintf(stderr,
                         "attempt %u/%u failed (%s), retrying in "
                         "%u ms\n",
                         attempt + 1, opt.retries + 1, why.c_str(),
                         delay);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay));
            continue;
        }
        if (attempt >= opt.retries) {
            std::fprintf(stderr, "%s\n", why.c_str());
            return false;
        }
        unsigned delay = std::min<unsigned>(
            opt.retryCapMs, opt.retryBaseMs << std::min(attempt, 16u));
        delay += static_cast<unsigned>(
            jitter.uniform(delay / 2 + 1));
        std::fprintf(stderr,
                     "attempt %u/%u failed (%s), retrying in %u ms\n",
                     attempt + 1, opt.retries + 1, why.c_str(),
                     delay);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(delay));
    }
}

/** Stable scalar print: integral doubles as integers, the rest in
 * round-trip form — deterministic for bit-identical results. */
void
printScalar(const serve::json::Value &v)
{
    switch (v.kind) {
      case serve::json::Value::Kind::Bool:
        std::printf("%s", v.boolean ? "true" : "false");
        break;
      case serve::json::Value::Kind::Number:
        if (v.number == std::floor(v.number) &&
            std::fabs(v.number) < 9.007199254740992e15) {
            std::printf("%lld",
                        static_cast<long long>(v.number));
        } else {
            std::printf("%.17g", v.number);
        }
        break;
      case serve::json::Value::Kind::String:
        std::printf("%s", v.string.c_str());
        break;
      default:
        std::printf("?");
        break;
    }
}

int
printSubmitReply(const serve::json::Value &reply)
{
    const serve::json::Value *cells = reply.find("cells");
    if (!cells || !cells->isArray()) {
        std::fprintf(stderr, "malformed submit reply\n");
        return 1;
    }
    int rc = 0;
    for (const auto &cell : cells->array) {
        std::string label = cell.getString("label", "?");
        std::string source = cell.getString("source", "");
        std::string error = cell.getString("error", "");
        const serve::json::Value *result = cell.find("result");
        if (!error.empty() || !result || !result->isObject()) {
            std::fprintf(stderr, "%s: %s\n", label.c_str(),
                         error.empty() ? "no result"
                                       : error.c_str());
            rc = 1;
            continue;
        }
        if (!source.empty())
            std::fprintf(stderr, "%s: %s\n", label.c_str(),
                         source.c_str());
        std::printf("%s", label.c_str());
        for (const auto &[key, value] : result->object) {
            std::printf(" %s=", key.c_str());
            printScalar(value);
        }
        std::printf("\n");
    }
    std::fprintf(
        stderr,
        "submit: %lld cached, %lld merged, %lld rejected, "
        "%lld timeouts, %lld failures\n",
        static_cast<long long>(reply.getNumber("cached", 0)),
        static_cast<long long>(reply.getNumber("merged", 0)),
        static_cast<long long>(reply.getNumber("rejected", 0)),
        static_cast<long long>(reply.getNumber("timeouts", 0)),
        static_cast<long long>(reply.getNumber("failures", 0)));
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt)) {
        usage();
        return 2;
    }
    if (opt.socket.empty() == opt.connect.empty()) {
        std::fprintf(stderr,
                     "need exactly one of --socket and --connect\n");
        usage();
        return 2;
    }
    if (opt.op == "query" && opt.fingerprint.empty()) {
        std::fprintf(stderr, "--op query needs --fingerprint\n");
        return 2;
    }

    std::string reply_line;
    if (!exchange(opt, buildRequest(opt), &reply_line))
        return 1;

    serve::json::Value reply;
    std::string why;
    if (!serve::json::parse(reply_line, &reply, &why)) {
        std::fprintf(stderr, "malformed reply (%s): %s\n",
                     why.c_str(), reply_line.c_str());
        return 1;
    }
    if (!reply.getBool("ok", false)) {
        std::fprintf(stderr, "error: %s\n",
                     reply.getString("error", "?").c_str());
        return 1;
    }

    if (opt.op == "submit")
        return printSubmitReply(reply);
    if (opt.op == "metrics") {
        std::printf("%s", reply.getString("text", "").c_str());
        return 0;
    }
    // ping/stats/query/ring/shutdown: the reply is the output.
    std::printf("%s\n", reply_line.c_str());
    return 0;
}
