/**
 * @file
 * nsrf_request: command-line client for the nsrf_serve daemon.
 *
 * Builds one protocol request (serve/server.hh), sends it over the
 * daemon's Unix domain socket, and prints the reply.  Submit
 * replies are printed one stable line per cell — the line depends
 * only on the simulation result, never on how it was served — so a
 * cold run and a warm (cache-served) run of the same request
 * byte-compare equal; the cached/merged/rejected summary goes to
 * stderr.
 *
 *     nsrf_request --socket /tmp/nsrf.sock --op ping
 *     nsrf_request --socket /tmp/nsrf.sock --app all --events 20000
 *     nsrf_request --socket /tmp/nsrf.sock --op stats
 */

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "nsrf/common/logging.hh"
#include "nsrf/common/options.hh"
#include "nsrf/serve/json_in.hh"
#include "nsrf/serve/spec.hh"
#include "nsrf/stats/json.hh"

using namespace nsrf;

namespace
{

struct Options
{
    std::string socket;
    std::string op = "submit";
    std::string fingerprint; //!< for --op query
    unsigned timeoutMs = 120'000;
    serve::CellParams cell;
};

void
usage()
{
    std::puts(
        "usage: nsrf_request --socket PATH [options]\n"
        "  --op submit|ping|query|stats|metrics|shutdown\n"
        "  --fingerprint HEX      cache key for --op query\n"
        "  --timeout-ms N         reply wait bound (default 120000)\n"
        "submit cell flags (defaults match nsrf_sim):\n"
        "  --app NAME|all --org nsf|segmented|conventional|windowed\n"
        "  --regs N --line W --miss single|live|line --write wa|fow\n"
        "  --repl lru|fifo|random --mech hw|sw --valid --bg\n"
        "  --events N --seed N");
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    common::OptionScanner scan(argc, argv);
    while (scan.next()) {
        if (scan.is("--socket")) {
            opt.socket = scan.value();
        } else if (scan.is("--op")) {
            opt.op = scan.value();
        } else if (scan.is("--fingerprint")) {
            opt.fingerprint = scan.value();
        } else if (scan.is("--timeout-ms")) {
            opt.timeoutMs = scan.u32();
        } else if (scan.is("--app")) {
            opt.cell.app = scan.value();
        } else if (scan.is("--org")) {
            const char *value = scan.value();
            if (!serve::parseOrganization(value, &opt.cell.org)) {
                std::fprintf(stderr, "unknown org '%s'\n", value);
                return false;
            }
        } else if (scan.is("--regs")) {
            opt.cell.totalRegs = scan.u32();
        } else if (scan.is("--line")) {
            opt.cell.regsPerLine = scan.u32();
        } else if (scan.is("--miss")) {
            const char *value = scan.value();
            if (!serve::parseMissPolicy(value, &opt.cell.miss)) {
                std::fprintf(stderr, "unknown miss policy '%s'\n",
                             value);
                return false;
            }
        } else if (scan.is("--write")) {
            const char *value = scan.value();
            if (!serve::parseWritePolicy(value, &opt.cell.write)) {
                std::fprintf(stderr, "unknown write policy '%s'\n",
                             value);
                return false;
            }
        } else if (scan.is("--repl")) {
            const char *value = scan.value();
            if (!cam::tryParseReplacement(value, &opt.cell.repl)) {
                std::fprintf(stderr,
                             "unknown replacement policy '%s'\n",
                             value);
                return false;
            }
        } else if (scan.is("--mech")) {
            const char *value = scan.value();
            if (!serve::parseMechanism(value, &opt.cell.mech)) {
                std::fprintf(stderr, "unknown mechanism '%s'\n",
                             value);
                return false;
            }
        } else if (scan.is("--valid")) {
            opt.cell.trackValid = true;
        } else if (scan.is("--bg")) {
            opt.cell.background = true;
        } else if (scan.is("--events")) {
            opt.cell.events = scan.u64();
        } else if (scan.is("--seed")) {
            opt.cell.seed = scan.u64();
        } else if (scan.is("--help") || scan.is("-h")) {
            usage();
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n",
                         scan.arg().c_str());
            return false;
        }
    }
    return true;
}

std::string
buildRequest(const Options &opt)
{
    stats::JsonWriter json;
    json.beginObject();
    json.field("op", opt.op);
    if (opt.op == "submit") {
        const serve::CellParams &c = opt.cell;
        json.key("cells").beginArray();
        json.beginObject();
        json.field("app", c.app);
        json.field("org", regfile::organizationName(c.org));
        if (c.totalRegs)
            json.field("regs", c.totalRegs);
        json.field("line", c.regsPerLine);
        json.field("miss", serve::missPolicyName(c.miss));
        json.field("write", serve::writePolicyName(c.write));
        json.field("repl", cam::replacementName(c.repl));
        json.field("mech", serve::mechanismName(c.mech));
        json.field("valid", c.trackValid);
        json.field("bg", c.background);
        json.field("events", c.events);
        if (c.seed)
            json.field("seed", c.seed);
        json.endObject();
        json.endArray();
    } else if (opt.op == "query") {
        json.field("fingerprint", opt.fingerprint);
    }
    json.endObject();
    return json.str();
}

/** One round trip: send @p request, read one reply line. */
bool
exchange(const Options &opt, const std::string &request,
         std::string *reply)
{
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (opt.socket.empty() ||
        opt.socket.size() >= sizeof(addr.sun_path)) {
        std::fprintf(stderr, "bad socket path\n");
        return false;
    }
    std::memcpy(addr.sun_path, opt.socket.c_str(),
                opt.socket.size() + 1);

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        std::fprintf(stderr, "socket: %s\n", std::strerror(errno));
        return false;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        std::fprintf(stderr, "connect %s: %s\n",
                     opt.socket.c_str(), std::strerror(errno));
        ::close(fd);
        return false;
    }
    timeval tv;
    tv.tv_sec = opt.timeoutMs / 1000;
    tv.tv_usec = static_cast<long>(opt.timeoutMs % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

    std::string line = request + "\n";
    std::size_t sent = 0;
    while (sent < line.size()) {
        ssize_t n = ::send(fd, line.data() + sent,
                           line.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            std::fprintf(stderr, "send: %s\n",
                         std::strerror(errno));
            ::close(fd);
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }

    reply->clear();
    char chunk[4096];
    while (reply->find('\n') == std::string::npos) {
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            std::fprintf(stderr, "recv: %s\n",
                         std::strerror(errno));
            ::close(fd);
            return false;
        }
        if (n == 0)
            break;
        reply->append(chunk, static_cast<std::size_t>(n));
    }
    ::close(fd);
    std::size_t nl = reply->find('\n');
    if (nl == std::string::npos) {
        std::fprintf(stderr, "no reply (daemon gone?)\n");
        return false;
    }
    reply->resize(nl);
    return true;
}

/** Stable scalar print: integral doubles as integers, the rest in
 * round-trip form — deterministic for bit-identical results. */
void
printScalar(const serve::json::Value &v)
{
    switch (v.kind) {
      case serve::json::Value::Kind::Bool:
        std::printf("%s", v.boolean ? "true" : "false");
        break;
      case serve::json::Value::Kind::Number:
        if (v.number == std::floor(v.number) &&
            std::fabs(v.number) < 9.007199254740992e15) {
            std::printf("%lld",
                        static_cast<long long>(v.number));
        } else {
            std::printf("%.17g", v.number);
        }
        break;
      case serve::json::Value::Kind::String:
        std::printf("%s", v.string.c_str());
        break;
      default:
        std::printf("?");
        break;
    }
}

int
printSubmitReply(const serve::json::Value &reply)
{
    const serve::json::Value *cells = reply.find("cells");
    if (!cells || !cells->isArray()) {
        std::fprintf(stderr, "malformed submit reply\n");
        return 1;
    }
    int rc = 0;
    for (const auto &cell : cells->array) {
        std::string label = cell.getString("label", "?");
        std::string source = cell.getString("source", "");
        std::string error = cell.getString("error", "");
        const serve::json::Value *result = cell.find("result");
        if (!error.empty() || !result || !result->isObject()) {
            std::fprintf(stderr, "%s: %s\n", label.c_str(),
                         error.empty() ? "no result"
                                       : error.c_str());
            rc = 1;
            continue;
        }
        if (!source.empty())
            std::fprintf(stderr, "%s: %s\n", label.c_str(),
                         source.c_str());
        std::printf("%s", label.c_str());
        for (const auto &[key, value] : result->object) {
            std::printf(" %s=", key.c_str());
            printScalar(value);
        }
        std::printf("\n");
    }
    std::fprintf(
        stderr,
        "submit: %lld cached, %lld merged, %lld rejected, "
        "%lld timeouts, %lld failures\n",
        static_cast<long long>(reply.getNumber("cached", 0)),
        static_cast<long long>(reply.getNumber("merged", 0)),
        static_cast<long long>(reply.getNumber("rejected", 0)),
        static_cast<long long>(reply.getNumber("timeouts", 0)),
        static_cast<long long>(reply.getNumber("failures", 0)));
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt)) {
        usage();
        return 2;
    }
    if (opt.socket.empty()) {
        usage();
        return 2;
    }
    if (opt.op == "query" && opt.fingerprint.empty()) {
        std::fprintf(stderr, "--op query needs --fingerprint\n");
        return 2;
    }

    std::string reply_line;
    if (!exchange(opt, buildRequest(opt), &reply_line))
        return 1;

    serve::json::Value reply;
    std::string why;
    if (!serve::json::parse(reply_line, &reply, &why)) {
        std::fprintf(stderr, "malformed reply (%s): %s\n",
                     why.c_str(), reply_line.c_str());
        return 1;
    }
    if (!reply.getBool("ok", false)) {
        std::fprintf(stderr, "error: %s\n",
                     reply.getString("error", "?").c_str());
        return 1;
    }

    if (opt.op == "submit")
        return printSubmitReply(reply);
    if (opt.op == "metrics") {
        std::printf("%s", reply.getString("text", "").c_str());
        return 0;
    }
    // ping/stats/shutdown/query: the reply itself is the output.
    std::printf("%s\n", reply_line.c_str());
    return 0;
}
