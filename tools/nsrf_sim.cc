/**
 * @file
 * nsrf_sim: command-line driver for the register file simulator.
 *
 * Runs any benchmark workload against any register file
 * organization and prints the run metrics as a table or JSON, so
 * experiments can be scripted without writing C++.
 *
 *     nsrf_sim --list
 *     nsrf_sim --app Gamteb --org nsf --regs 128
 *     nsrf_sim --app GateSim --org segmented --mech sw --events 1000000
 *     nsrf_sim --app all --org windowed --json
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "nsrf/common/logging.hh"
#include "nsrf/common/options.hh"
#include "nsrf/serve/cache.hh"
#include "nsrf/serve/scheduler.hh"
#include "nsrf/serve/spec.hh"
#include "nsrf/sim/simulator.hh"
#include "nsrf/snapshot/snapshot.hh"
#include "nsrf/regfile/statsdump.hh"
#include "nsrf/sim/sweep.hh"
#include "nsrf/sim/tracefile.hh"
#include "nsrf/stats/table.hh"
#include "nsrf/trace/export.hh"
#include "nsrf/trace/hooks.hh"
#include "nsrf/workload/parallel.hh"
#include "nsrf/workload/profile.hh"
#include "nsrf/workload/sequential.hh"

using namespace nsrf;

namespace
{

struct Options
{
    std::string app = "Gamteb";
    regfile::Organization org = regfile::Organization::NamedState;
    unsigned totalRegs = 0; // 0 = paper default for the app
    unsigned regsPerLine = 1;
    regfile::MissPolicy miss = regfile::MissPolicy::ReloadSingle;
    regfile::WritePolicy write = regfile::WritePolicy::WriteAllocate;
    cam::ReplacementKind repl = cam::ReplacementKind::Lru;
    regfile::SpillMechanism mech =
        regfile::SpillMechanism::HardwareAssist;
    bool trackValid = false;
    bool background = false;
    std::uint64_t events = 600'000;
    std::uint64_t seed = 0; // 0 = profile default
    unsigned jobs = 1;      // worker threads for --app all
    bool json = false;
    bool list = false;
    std::string record; //!< capture the trace to this file
    std::string replay; //!< replay a trace file instead
    bool stats = false; //!< dump gem5-style statistics
    std::string traceOut;         //!< Perfetto timeline output
    std::uint64_t traceWindow = 0; //!< metrics window in cycles
    std::string cache; //!< result-cache directory (warm start)
    std::string snapshotOut; //!< save simulator state here
    std::string snapshotIn;  //!< resume from this snapshot
    std::uint64_t snapshotEvery = 0; //!< checkpoint cadence (instr)
};

void
usage()
{
    std::puts(
        "usage: nsrf_sim [options]\n"
        "  --list                 list benchmark workloads\n"
        "  --app NAME|all         workload (default Gamteb)\n"
        "  --org nsf|segmented|conventional|windowed\n"
        "  --regs N               total registers (default: paper)\n"
        "  --line W               NSF registers per line\n"
        "  --miss single|live|line   NSF reload policy\n"
        "  --write wa|fow         NSF write policy\n"
        "  --repl lru|fifo|random victim selection\n"
        "  --mech hw|sw           segmented spill mechanism\n"
        "  --valid                segmented per-register valid bits\n"
        "  --bg                   segmented background transfer\n"
        "  --events N             trace length (default 600000)\n"
        "  --seed N               workload seed override\n"
        "  --jobs N               run apps on N threads (0 = all\n"
        "                         cores; ignored with --record,\n"
        "                         --replay, or --stats)\n"
        "  --record FILE          capture the trace to FILE\n"
        "  --replay FILE          replay a captured trace\n"
        "  --stats                dump per-counter statistics\n"
        "  --trace-out PATH       write a Perfetto timeline trace\n"
        "                         (needs an NSRF_TRACE=ON build;\n"
        "                         with --app all, one file per app)\n"
        "  --trace-window N       metrics window in cycles for\n"
        "                         PATH.metrics (0 = whole run)\n"
        "  --cache DIR            reuse results from DIR (ignored\n"
        "                         with --record/--replay/--stats/\n"
        "                         --trace-out)\n"
        "  --snapshot-out FILE    save the simulator state to FILE\n"
        "                         at the end of the run\n"
        "  --snapshot-in FILE     resume from FILE (falls back to a\n"
        "                         cold run if it does not match)\n"
        "  --snapshot-every N     with --snapshot-out, overwrite the\n"
        "                         snapshot every N instructions\n"
        "  --json                 JSON output\n");
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    common::OptionScanner scan(argc, argv);
    while (scan.next()) {
        if (scan.is("--list")) {
            opt.list = true;
        } else if (scan.is("--json")) {
            opt.json = true;
        } else if (scan.is("--stats")) {
            opt.stats = true;
        } else if (scan.is("--valid")) {
            opt.trackValid = true;
        } else if (scan.is("--bg")) {
            opt.background = true;
        } else if (scan.is("--app")) {
            opt.app = scan.value();
        } else if (scan.is("--org")) {
            const char *value = scan.value();
            if (!serve::parseOrganization(value, &opt.org)) {
                std::fprintf(stderr, "unknown org '%s'\n", value);
                return false;
            }
        } else if (scan.is("--regs")) {
            opt.totalRegs = scan.u32();
        } else if (scan.is("--line")) {
            opt.regsPerLine = scan.u32();
        } else if (scan.is("--miss")) {
            const char *value = scan.value();
            if (!serve::parseMissPolicy(value, &opt.miss)) {
                std::fprintf(stderr, "unknown miss policy '%s'\n",
                             value);
                return false;
            }
        } else if (scan.is("--write")) {
            const char *value = scan.value();
            if (!serve::parseWritePolicy(value, &opt.write)) {
                std::fprintf(stderr, "unknown write policy '%s'\n",
                             value);
                return false;
            }
        } else if (scan.is("--repl")) {
            const char *value = scan.value();
            if (!cam::tryParseReplacement(value, &opt.repl)) {
                std::fprintf(stderr,
                             "unknown replacement policy '%s'\n",
                             value);
                return false;
            }
        } else if (scan.is("--mech")) {
            const char *value = scan.value();
            if (!serve::parseMechanism(value, &opt.mech)) {
                std::fprintf(stderr, "unknown mechanism '%s'\n",
                             value);
                return false;
            }
        } else if (scan.is("--events")) {
            opt.events = scan.u64();
        } else if (scan.is("--seed")) {
            opt.seed = scan.u64();
        } else if (scan.is("--jobs")) {
            opt.jobs = scan.u32();
            if (opt.jobs == 0)
                opt.jobs = sim::SweepRunner::hardwareJobs();
        } else if (scan.is("--record")) {
            opt.record = scan.value();
        } else if (scan.is("--replay")) {
            opt.replay = scan.value();
        } else if (scan.is("--trace-out")) {
            opt.traceOut = scan.value();
        } else if (scan.is("--trace-window")) {
            opt.traceWindow = scan.u64();
        } else if (scan.is("--cache")) {
            opt.cache = scan.value();
        } else if (scan.is("--snapshot-out")) {
            opt.snapshotOut = scan.value();
        } else if (scan.is("--snapshot-in")) {
            opt.snapshotIn = scan.value();
        } else if (scan.is("--snapshot-every")) {
            opt.snapshotEvery = scan.u64();
        } else if (scan.is("--help") || scan.is("-h")) {
            usage();
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n",
                         scan.arg().c_str());
            return false;
        }
    }
    return true;
}

sim::SimConfig
configFor(const workload::BenchmarkProfile &profile,
          const Options &opt)
{
    sim::SimConfig config;
    config.rf.org = opt.org;
    config.rf.totalRegs =
        opt.totalRegs ? opt.totalRegs
                      : (profile.parallel ? 128u : 80u);
    config.rf.regsPerContext = profile.regsPerContext;
    config.rf.regsPerLine = opt.regsPerLine;
    config.rf.missPolicy = opt.miss;
    config.rf.writePolicy = opt.write;
    config.rf.replacement = opt.repl;
    config.rf.mechanism = opt.mech;
    config.rf.trackValid = opt.trackValid;
    config.rf.backgroundTransfer = opt.background;
    return config;
}

std::unique_ptr<sim::TraceGenerator>
workloadFor(const workload::BenchmarkProfile &profile,
            std::uint64_t events)
{
    std::uint64_t len =
        std::min(profile.executedInstructions, events);
    if (profile.parallel) {
        return std::make_unique<workload::ParallelWorkload>(profile,
                                                            len);
    }
    return std::make_unique<workload::SequentialWorkload>(profile,
                                                          len);
}

/**
 * Per-app output path for --trace-out: with multiple apps the app
 * name is inserted before the extension ("g.json" -> "g.Gamteb.json")
 * so concurrent runs never clobber each other's files.
 */
std::string
tracePathFor(const std::string &base, const std::string &app,
             bool multiple)
{
    if (!multiple)
        return base;
    std::size_t dot = base.rfind('.');
    std::size_t slash = base.rfind('/');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash)) {
        return base + "." + app;
    }
    return base.substr(0, dot) + "." + app + base.substr(dot);
}

/**
 * Serial run with the snapshot hooks: resume from --snapshot-in if
 * it matches this run's identity (cold otherwise), and checkpoint to
 * --snapshot-out every --snapshot-every instructions plus once at
 * the end of the run.
 */
sim::RunResult
runSnapshotted(const workload::BenchmarkProfile &profile,
               const Options &opt)
{
    // The identity binds the snapshot to (workload, seed, config);
    // the provenance keys mirror serve::cellsFromParams so offline
    // and daemon-side identities of the same cell agree.
    serve::Provenance provenance = {
        {"app", profile.name},
        {"events", std::to_string(opt.events)},
        {"profileSeed", std::to_string(profile.seed)},
        {"generator", "synthetic-v2"},
    };
    sim::SimConfig config = configFor(profile, opt);
    serve::Fingerprint identity =
        snapshot::simulatorIdentity(config, provenance);

    auto gen = workloadFor(profile, opt.events);
    sim::TraceSimulator simulator(config);
    simulator.beginRun();

    if (!opt.snapshotIn.empty()) {
        std::string bytes;
        std::string why;
        if (!snapshot::readSnapshotFile(opt.snapshotIn, &bytes)) {
            std::fprintf(stderr,
                         "snapshot: cannot read %s; cold run\n",
                         opt.snapshotIn.c_str());
        } else if (!snapshot::restoreSimulator(bytes, identity,
                                               &simulator, &why)) {
            std::fprintf(stderr,
                         "snapshot: %s does not apply (%s); "
                         "cold run\n",
                         opt.snapshotIn.c_str(), why.c_str());
        } else if (!snapshot::skipEvents(
                       *gen, simulator.eventsConsumed())) {
            nsrf_fatal("snapshot: the workload ends before the "
                       "snapshot position; wrong --events/--seed?");
        } else {
            std::fprintf(stderr,
                         "snapshot: resumed %s at %llu "
                         "instructions\n",
                         opt.snapshotIn.c_str(),
                         static_cast<unsigned long long>(
                             simulator.instructionsRun()));
        }
    }

    auto checkpoint = [&]() {
        std::string why;
        if (!snapshot::writeSnapshotFile(
                opt.snapshotOut,
                snapshot::saveSimulator(simulator, identity),
                &why)) {
            nsrf_fatal("snapshot: cannot write %s: %s",
                       opt.snapshotOut.c_str(), why.c_str());
        }
    };
    auto nextMark = [&]() {
        return (simulator.instructionsRun() / opt.snapshotEvery +
                1) *
               opt.snapshotEvery;
    };

    std::uint64_t mark = opt.snapshotEvery ? nextMark() : 0;
    constexpr std::size_t chunk_capacity = 512;
    sim::TraceEvent chunk[chunk_capacity];
    while (true) {
        std::size_t n = gen->fill(chunk, chunk_capacity);
        if (n == 0)
            break;
        bool more = simulator.stepRun(chunk, n);
        if (mark && simulator.instructionsRun() >= mark) {
            checkpoint();
            mark = nextMark();
        }
        if (!more)
            break;
    }
    if (!opt.snapshotOut.empty())
        checkpoint();
    sim::RunResult result = simulator.finishRun();
    if (opt.stats) {
        regfile::dumpStats(simulator.registerFile(), stdout,
                           "rf." + profile.name);
        std::printf("\n");
    }
    return result;
}

sim::RunResult
runOne(const workload::BenchmarkProfile &profile_in,
       const Options &opt, const std::string &trace_out)
{
    workload::BenchmarkProfile profile = profile_in;
    if (opt.seed)
        profile.seed = opt.seed;

    if (!opt.snapshotOut.empty() || !opt.snapshotIn.empty())
        return runSnapshotted(profile, opt);

    std::unique_ptr<sim::TraceGenerator> gen;
    if (!opt.replay.empty()) {
        gen = std::make_unique<sim::FileTraceGenerator>(opt.replay);
    } else {
        gen = workloadFor(profile, opt.events);
    }
    if (!opt.record.empty()) {
        std::uint64_t len =
            std::min(profile.executedInstructions, opt.events);
        std::uint64_t n = sim::captureTrace(*gen, opt.record, len);
        std::fprintf(stderr, "captured %llu events to %s\n",
                     static_cast<unsigned long long>(n),
                     opt.record.c_str());
        gen->reset();
    }

    sim::TraceSimulator simulator(configFor(profile, opt));
    sim::RunResult result;
    if (!trace_out.empty() && trace::compiledIn) {
        trace::Tracer tracer;
        trace::Session session(tracer);
        result = simulator.run(*gen);
        trace::writePerfettoJson(tracer, trace_out, profile.name);
        trace::writeMetricsText(tracer, trace_out + ".metrics",
                                opt.traceWindow);
        std::fprintf(stderr, "wrote timeline trace to %s\n",
                     trace_out.c_str());
    } else {
        result = simulator.run(*gen);
    }
    if (opt.stats) {
        regfile::dumpStats(simulator.registerFile(), stdout,
                           "rf." + profile.name);
        std::printf("\n");
    }
    return result;
}

/**
 * Run the app list through sim::SweepRunner on opt.jobs threads.
 * Only used when every run is an independent synthetic-workload
 * cell: --record/--replay/--stats keep the serial path.
 */
std::vector<sim::RunResult>
runParallel(const std::vector<workload::BenchmarkProfile> &apps,
            const Options &opt)
{
    std::vector<sim::SweepCell> cells;
    for (const auto &app : apps) {
        workload::BenchmarkProfile profile = app;
        if (opt.seed)
            profile.seed = opt.seed;
        sim::SweepCell cell;
        cell.label = profile.name;
        cell.config = configFor(profile, opt);
        cell.makeGenerator = [profile, events = opt.events]() {
            return workloadFor(profile, events);
        };
        if (!opt.traceOut.empty()) {
            cell.traceOut = tracePathFor(opt.traceOut, profile.name,
                                         apps.size() > 1);
            cell.traceWindow = opt.traceWindow;
        }
        cells.push_back(std::move(cell));
    }
    return sim::SweepRunner(opt.jobs).run(cells);
}

void
printJson(const std::string &app, const sim::RunResult &r,
          bool last)
{
    std::printf(
        "  {\"app\": \"%s\", \"regfile\": \"%s\", "
        "\"instructions\": %llu, \"cycles\": %llu, "
        "\"contextSwitches\": %llu, \"regsReloaded\": %llu, "
        "\"regsSpilled\": %llu, \"reloadsPerInstr\": %.6e, "
        "\"meanUtilization\": %.4f, \"maxUtilization\": %.4f, "
        "\"meanResidentContexts\": %.3f, \"overheadFraction\": "
        "%.5f}%s\n",
        app.c_str(), r.regfileDescription.c_str(),
        static_cast<unsigned long long>(r.instructions),
        static_cast<unsigned long long>(r.cycles),
        static_cast<unsigned long long>(r.contextSwitches),
        static_cast<unsigned long long>(r.regsReloaded),
        static_cast<unsigned long long>(r.regsSpilled),
        r.reloadsPerInstr(), r.meanUtilization, r.maxUtilization,
        r.meanResidentContexts, r.overheadFraction(),
        last ? "" : ",");
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt)) {
        usage();
        return 2;
    }

    if (opt.list) {
        stats::TextTable table;
        table.header({"Benchmark", "Type", "Instr/switch",
                      "Executed instr (paper)"});
        for (const auto &p : workload::paperBenchmarks()) {
            table.row({p.name,
                       p.parallel ? "parallel" : "sequential",
                       stats::TextTable::num(p.tableInstrPerSwitch,
                                             0),
                       stats::TextTable::integer(
                           p.executedInstructions)});
        }
        std::printf("%s", table.render().c_str());
        return 0;
    }

    bool snapshotting =
        !opt.snapshotOut.empty() || !opt.snapshotIn.empty();
    if (opt.snapshotEvery && opt.snapshotOut.empty()) {
        std::fprintf(stderr,
                     "--snapshot-every needs --snapshot-out\n");
        return 2;
    }
    if (snapshotting &&
        (!opt.record.empty() || !opt.replay.empty() ||
         !opt.traceOut.empty() || opt.app == "all")) {
        std::fprintf(stderr,
                     "--snapshot-in/--snapshot-out need a single "
                     "synthetic-workload run (no --record/--replay/"
                     "--trace-out/--app all)\n");
        return 2;
    }

    std::vector<workload::BenchmarkProfile> apps;
    if (opt.app == "all") {
        apps = workload::paperBenchmarks();
    } else {
        apps.push_back(workload::profileByName(opt.app));
    }

    if (!opt.traceOut.empty() && !trace::compiledIn) {
        std::fprintf(stderr,
                     "warning: --trace-out ignored; this build has "
                     "NSRF_TRACE=OFF (use the 'trace' preset)\n");
    }

    bool cache_ok = !opt.cache.empty();
    if (cache_ok && (!opt.record.empty() || !opt.replay.empty() ||
                     opt.stats || !opt.traceOut.empty())) {
        nsrf_warn("--cache disabled: --record/--replay/--stats/"
                  "--trace-out runs are not cacheable");
        cache_ok = false;
    }
    if (cache_ok && snapshotting) {
        nsrf_warn("--cache disabled: snapshot runs execute the "
                  "simulator directly");
        cache_ok = false;
    }

    if (opt.json)
        std::printf("[\n");

    bool parallel_ok = opt.jobs > 1 && opt.record.empty() &&
                       opt.replay.empty() && !opt.stats &&
                       !snapshotting;
    std::vector<sim::RunResult> results;
    bool have_results = false;
    if (cache_ok) {
        // The cached path builds its cells through serve::
        // cellsFromParams — the same construction the daemon uses —
        // so the offline store and a daemon pointed at the same
        // directory share fingerprints.
        serve::CellParams params;
        params.app = opt.app;
        params.org = opt.org;
        params.totalRegs = opt.totalRegs;
        params.regsPerLine = opt.regsPerLine;
        params.miss = opt.miss;
        params.write = opt.write;
        params.repl = opt.repl;
        params.mech = opt.mech;
        params.trackValid = opt.trackValid;
        params.background = opt.background;
        params.events = opt.events;
        params.seed = opt.seed;
        std::vector<sim::SweepCell> cells;
        std::string why;
        if (!serve::cellsFromParams(params, &cells, &why))
            nsrf_fatal("%s", why.c_str());
        serve::ResultCacheConfig cache_config;
        cache_config.dir = opt.cache;
        serve::ResultCache cache(cache_config);
        serve::CachedRunStats hit_miss = serve::runCellsCached(
            &cache, opt.jobs, cells, &results);
        std::fprintf(
            stderr, "cache: %llu hits, %llu misses\n",
            static_cast<unsigned long long>(hit_miss.hits),
            static_cast<unsigned long long>(hit_miss.misses));
        have_results = true;
    } else if (parallel_ok) {
        results = runParallel(apps, opt);
        have_results = true;
    }

    stats::TextTable table;
    table.header({"App", "Regfile", "Instr", "Cycles", "Switches",
                  "Reloads/instr", "Util", "Overhead"});
    for (std::size_t i = 0; i < apps.size(); ++i) {
        std::string trace_out =
            opt.traceOut.empty()
                ? std::string()
                : tracePathFor(opt.traceOut, apps[i].name,
                               apps.size() > 1);
        auto r = have_results ? results[i]
                              : runOne(apps[i], opt, trace_out);
        if (opt.json) {
            printJson(apps[i].name, r, i + 1 == apps.size());
        } else {
            table.row({apps[i].name, r.regfileDescription,
                       stats::TextTable::integer(r.instructions),
                       stats::TextTable::integer(r.cycles),
                       stats::TextTable::integer(r.contextSwitches),
                       r.reloadsPerInstr() == 0.0
                           ? std::string("0")
                           : stats::TextTable::scientific(
                                 r.reloadsPerInstr()),
                       stats::TextTable::percent(r.meanUtilization,
                                                 0),
                       stats::TextTable::percent(
                           r.overheadFraction())});
        }
    }

    if (opt.json)
        std::printf("]\n");
    else
        std::printf("%s", table.render().c_str());
    return 0;
}
