/**
 * @file
 * nsrf_serve: the sweep-serving daemon, single-node or fleet.
 *
 * Binds a Unix domain socket and serves line-delimited JSON
 * requests (serve/server.hh documents the protocol).  Results are
 * deduplicated through the single-flight batch scheduler and kept
 * in a content-addressed cache that can persist to disk, so a
 * directory shared with `nsrf_sim --cache` warm-starts both ways.
 *
 *     nsrf_serve --socket /tmp/nsrf.sock --cache /tmp/nsrf-cache
 *     nsrf_request --socket /tmp/nsrf.sock --app all
 *
 * With --listen the daemon becomes a fleet node: a TCP listener
 * (and the optional UDS one) runs on the epoll transport with
 * priority lanes, per-client quotas, and load shedding; with --ring
 * it shards result ownership across the named peers by consistent
 * hashing, fills cache misses from the owning peer, and replicates
 * fresh results to the replica owners (fleet/node.hh).
 *
 *     nsrf_serve --listen 127.0.0.1:7101 --ring ring.json \
 *                --node-id n1 --cache /tmp/nsrf-cache-n1
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "nsrf/common/logging.hh"
#include "nsrf/common/options.hh"
#include "nsrf/fleet/net.hh"
#include "nsrf/fleet/node.hh"
#include "nsrf/fleet/ring.hh"
#include "nsrf/fleet/transport.hh"
#include "nsrf/serve/cache.hh"
#include "nsrf/serve/scheduler.hh"
#include "nsrf/serve/server.hh"
#include "nsrf/snapshot/prefix.hh"

using namespace nsrf;

namespace
{

struct Options
{
    std::string socket;
    std::string cache; //!< empty = memory-only store
    unsigned jobs = 1;
    std::size_t maxQueue = 256;
    std::size_t maxBatch = 32;
    std::size_t cacheEntries = 4096;
    std::uint64_t cacheBytes = 64ull << 20;
    std::uint64_t cacheDiskBytes = 0; //!< 0 = unbounded
    unsigned timeoutMs = 120'000;
    std::uint64_t prefixSteps = 0; //!< 0 = cold batches

    // Fleet mode (active when --listen is given).
    std::string listen;  //!< HOST:PORT; port 0 = ephemeral
    std::string ring;    //!< ring config path
    std::string nodeId;  //!< our id in the ring config
    unsigned replicas = 0; //!< 0 = take the ring config's value
    double quotaRate = 0.0;
    double quotaBurst = 0.0;
    unsigned workers = 2;
    unsigned peerTimeoutMs = 5'000;
    std::size_t laneQueueMax = 256;
};

void
usage()
{
    std::puts(
        "usage: nsrf_serve --socket PATH [options]\n"
        "       nsrf_serve --listen HOST:PORT [--socket PATH] "
        "[options]\n"
        "  --socket PATH        Unix domain socket to bind\n"
        "  --cache DIR          persist results under DIR (shared\n"
        "                       with nsrf_sim --cache)\n"
        "  --jobs N             SweepRunner workers per batch\n"
        "                       (default 1, 0 = all cores)\n"
        "  --max-queue N        admission bound; submits beyond it\n"
        "                       are rejected (default 256)\n"
        "  --max-batch N        cells per SweepRunner batch\n"
        "                       (default 32)\n"
        "  --cache-entries N    in-memory entry bound (default 4096)\n"
        "  --cache-bytes N      in-memory byte bound (default 64M)\n"
        "  --cache-disk-bytes N on-disk byte bound (default\n"
        "                       unbounded)\n"
        "  --timeout-ms N       per-request budget (default 120000)\n"
        "  --prefix-steps N     resume simulated cells from an\n"
        "                       N-instruction prefix snapshot kept\n"
        "                       in the result cache (default 0 =\n"
        "                       simulate cold)\n"
        "fleet mode (--listen enables the TCP/epoll transport):\n"
        "  --listen HOST:PORT   TCP bind address (port 0 =\n"
        "                       ephemeral; the choice is printed)\n"
        "  --ring FILE          consistent-hash ring config; peers\n"
        "                       fill cache misses for cells they\n"
        "                       own (fleet/ring.hh documents it)\n"
        "  --node-id NAME       this node's id in the ring config\n"
        "  --replicas N         override the ring config's replica\n"
        "                       count\n"
        "  --quota RATE[:BURST] per-client token bucket: RATE cells\n"
        "                       per second, BURST capacity (default\n"
        "                       burst = rate; 0 disables)\n"
        "  --workers N          transport worker threads (default 2)\n"
        "  --peer-timeout-ms N  budget per peer exchange (default\n"
        "                       5000)\n"
        "  --lane-queue N       queued requests per priority lane\n"
        "                       before shedding (default 256)\n"
        "  (set NSRF_FLEET_POLL=1 to force the poll(2) backend)");
}

serve::Server *g_server = nullptr;
fleet::Transport *g_transport = nullptr;

void
onSignal(int)
{
    if (g_transport)
        g_transport->requestStop();
    if (g_server)
        g_server->requestStop();
}

/** Parse --quota RATE[:BURST]. */
void
parseQuota(const char *text, double *rate, double *burst)
{
    char *end = nullptr;
    *rate = std::strtod(text, &end);
    if (end == text || *rate < 0.0)
        nsrf_fatal("bad --quota rate '%s'", text);
    *burst = *rate;
    if (*end == ':') {
        const char *burstText = end + 1;
        *burst = std::strtod(burstText, &end);
        if (end == burstText || *burst < 0.0 || *end != '\0')
            nsrf_fatal("bad --quota burst '%s'", text);
    } else if (*end != '\0') {
        nsrf_fatal("bad --quota '%s'", text);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    common::OptionScanner scan(argc, argv);
    while (scan.next()) {
        if (scan.is("--socket"))
            opt.socket = scan.value();
        else if (scan.is("--cache"))
            opt.cache = scan.value();
        else if (scan.is("--jobs"))
            opt.jobs = scan.u32();
        else if (scan.is("--max-queue"))
            opt.maxQueue = scan.u64();
        else if (scan.is("--max-batch"))
            opt.maxBatch = scan.u64();
        else if (scan.is("--cache-entries"))
            opt.cacheEntries = scan.u64();
        else if (scan.is("--cache-bytes"))
            opt.cacheBytes = scan.u64();
        else if (scan.is("--cache-disk-bytes"))
            opt.cacheDiskBytes = scan.u64();
        else if (scan.is("--timeout-ms"))
            opt.timeoutMs = scan.u32();
        else if (scan.is("--prefix-steps"))
            opt.prefixSteps = scan.u64();
        else if (scan.is("--listen"))
            opt.listen = scan.value();
        else if (scan.is("--ring"))
            opt.ring = scan.value();
        else if (scan.is("--node-id"))
            opt.nodeId = scan.value();
        else if (scan.is("--replicas"))
            opt.replicas = scan.u32();
        else if (scan.is("--quota"))
            parseQuota(scan.value(), &opt.quotaRate,
                       &opt.quotaBurst);
        else if (scan.is("--workers"))
            opt.workers = scan.u32();
        else if (scan.is("--peer-timeout-ms"))
            opt.peerTimeoutMs = scan.u32();
        else if (scan.is("--lane-queue"))
            opt.laneQueueMax = scan.u64();
        else if (scan.is("--help") || scan.is("-h")) {
            usage();
            return 0;
        } else {
            scan.unknown();
        }
    }
    bool fleetMode = !opt.listen.empty();
    if (!fleetMode && !opt.ring.empty())
        nsrf_fatal("--ring needs --listen (fleet mode)");
    if (opt.socket.empty() && !fleetMode) {
        usage();
        return 2;
    }
    if (opt.maxQueue == 0 || opt.maxBatch == 0)
        nsrf_fatal("--max-queue and --max-batch must be positive");

    serve::ResultCacheConfig cache_config;
    cache_config.dir = opt.cache;
    cache_config.maxEntries = opt.cacheEntries;
    cache_config.maxBytes = opt.cacheBytes;
    cache_config.maxDiskBytes = opt.cacheDiskBytes;
    serve::ResultCache cache(cache_config);

    serve::BatchScheduler::Config sched_config;
    sched_config.jobs = opt.jobs;
    sched_config.maxQueue = opt.maxQueue;
    sched_config.maxBatch = opt.maxBatch;
    if (opt.prefixSteps) {
        // Route cold batches through the prefix-restoring sweep:
        // warmup prefixes live in the same cache as results, so a
        // daemon restart (or a shared cache dir) resumes instead of
        // re-simulating the first prefixSteps instructions.
        sched_config.runner = snapshot::makePrefixBatchRunner(
            &cache, opt.jobs, opt.prefixSteps);
    }
    serve::BatchScheduler scheduler(&cache, sched_config);

    serve::ServerConfig server_config;
    server_config.socketPath = opt.socket;
    server_config.requestTimeoutMs = opt.timeoutMs;
    serve::Server server(server_config, &cache, &scheduler);

    if (!fleetMode) {
        std::string why;
        if (!server.start(&why))
            nsrf_fatal("cannot serve: %s", why.c_str());

        g_server = &server;
        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);

        std::fprintf(stderr, "nsrf_serve: listening on %s (%s)\n",
                     opt.socket.c_str(),
                     opt.cache.empty()
                         ? "memory-only cache"
                         : ("cache dir " + opt.cache).c_str());
        int rc = server.serve();

        // Graceful drain: finish queued/in-flight work before
        // exiting so accepted submits are never dropped.
        scheduler.drain();
        std::fprintf(stderr,
                     "nsrf_serve: drained, final counters:\n%s",
                     server.metricsText().c_str());
        return rc;
    }

    // Fleet mode: the node handles requests, the epoll transport
    // multiplexes the TCP (and optional UDS) listeners.
    std::string host;
    std::uint16_t port = 0;
    std::string why;
    if (!fleet::net::parseHostPort(opt.listen, &host, &port, &why))
        nsrf_fatal("bad --listen: %s", why.c_str());
    if (host.empty())
        host = "0.0.0.0";

    fleet::NodeConfig node_config;
    node_config.nodeId = opt.nodeId;
    node_config.peerTimeoutMs = opt.peerTimeoutMs;
    node_config.requestTimeoutMs = opt.timeoutMs;
    node_config.quota.ratePerSec = opt.quotaRate;
    node_config.quota.burst = opt.quotaBurst;
    fleet::Node node(node_config, &cache, &scheduler, &server);

    if (!opt.ring.empty()) {
        if (opt.nodeId.empty())
            nsrf_fatal("--ring needs --node-id");
        fleet::RingConfig ring_config;
        if (!fleet::loadRingConfig(opt.ring, &ring_config, &why))
            nsrf_fatal("cannot load ring: %s", why.c_str());
        if (opt.replicas)
            ring_config.replicas = opt.replicas;
        if (!node.setRing(std::move(ring_config), &why))
            nsrf_fatal("bad ring: %s", why.c_str());
    }

    server.setStatsHook([&node](stats::JsonWriter &json) {
        node.appendStats(json);
    });
    server.setMetricsHook(
        [&node](std::string &out) { node.appendMetrics(out); });

    fleet::TransportConfig transport_config;
    transport_config.tcpHost = host;
    transport_config.tcpPort = port;
    transport_config.udsPath = opt.socket;
    transport_config.workers = opt.workers == 0 ? 1 : opt.workers;
    transport_config.laneQueueMax = opt.laneQueueMax;
    fleet::Transport transport(
        transport_config,
        [&node](const std::string &line) {
            return node.handleRequest(line);
        },
        [&node](const std::string &line) {
            return node.admit(line);
        });
    node.attachTransport(&transport);

    if (!transport.start(&why))
        nsrf_fatal("cannot serve: %s", why.c_str());

    g_transport = &transport;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    // The bound port line is load-bearing: with an ephemeral port
    // the harness parses it to learn where the node landed.
    std::fprintf(stderr, "nsrf_serve: tcp port %u\n",
                 static_cast<unsigned>(transport.tcpPort()));
    std::fprintf(
        stderr, "nsrf_serve: fleet node %s on %s:%u%s%s (%s)\n",
        opt.nodeId.empty() ? "-" : opt.nodeId.c_str(),
        host.c_str(), static_cast<unsigned>(transport.tcpPort()),
        opt.socket.empty() ? "" : ", uds ",
        opt.socket.c_str(),
        opt.cache.empty() ? "memory-only cache"
                          : ("cache dir " + opt.cache).c_str());
    int rc = transport.run();

    scheduler.drain();
    std::fprintf(stderr, "nsrf_serve: drained, final counters:\n%s",
                 server.metricsText().c_str());
    return rc;
}
