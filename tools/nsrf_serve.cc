/**
 * @file
 * nsrf_serve: the sweep-serving daemon.
 *
 * Binds a Unix domain socket and serves line-delimited JSON
 * requests (serve/server.hh documents the protocol).  Results are
 * deduplicated through the single-flight batch scheduler and kept
 * in a content-addressed cache that can persist to disk, so a
 * directory shared with `nsrf_sim --cache` warm-starts both ways.
 *
 *     nsrf_serve --socket /tmp/nsrf.sock --cache /tmp/nsrf-cache
 *     nsrf_request --socket /tmp/nsrf.sock --app all
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "nsrf/common/logging.hh"
#include "nsrf/common/options.hh"
#include "nsrf/serve/cache.hh"
#include "nsrf/serve/scheduler.hh"
#include "nsrf/serve/server.hh"
#include "nsrf/snapshot/prefix.hh"

using namespace nsrf;

namespace
{

struct Options
{
    std::string socket;
    std::string cache; //!< empty = memory-only store
    unsigned jobs = 1;
    std::size_t maxQueue = 256;
    std::size_t maxBatch = 32;
    std::size_t cacheEntries = 4096;
    std::uint64_t cacheBytes = 64ull << 20;
    std::uint64_t cacheDiskBytes = 0; //!< 0 = unbounded
    unsigned timeoutMs = 120'000;
    std::uint64_t prefixSteps = 0; //!< 0 = cold batches
};

void
usage()
{
    std::puts(
        "usage: nsrf_serve --socket PATH [options]\n"
        "  --socket PATH        Unix domain socket to bind\n"
        "  --cache DIR          persist results under DIR (shared\n"
        "                       with nsrf_sim --cache)\n"
        "  --jobs N             SweepRunner workers per batch\n"
        "                       (default 1, 0 = all cores)\n"
        "  --max-queue N        admission bound; submits beyond it\n"
        "                       are rejected (default 256)\n"
        "  --max-batch N        cells per SweepRunner batch\n"
        "                       (default 32)\n"
        "  --cache-entries N    in-memory entry bound (default 4096)\n"
        "  --cache-bytes N      in-memory byte bound (default 64M)\n"
        "  --cache-disk-bytes N on-disk byte bound (default\n"
        "                       unbounded)\n"
        "  --timeout-ms N       per-request budget (default 120000)\n"
        "  --prefix-steps N     resume simulated cells from an\n"
        "                       N-instruction prefix snapshot kept\n"
        "                       in the result cache (default 0 =\n"
        "                       simulate cold)");
}

serve::Server *g_server = nullptr;

void
onSignal(int)
{
    if (g_server)
        g_server->requestStop();
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    common::OptionScanner scan(argc, argv);
    while (scan.next()) {
        if (scan.is("--socket"))
            opt.socket = scan.value();
        else if (scan.is("--cache"))
            opt.cache = scan.value();
        else if (scan.is("--jobs"))
            opt.jobs = scan.u32();
        else if (scan.is("--max-queue"))
            opt.maxQueue = scan.u64();
        else if (scan.is("--max-batch"))
            opt.maxBatch = scan.u64();
        else if (scan.is("--cache-entries"))
            opt.cacheEntries = scan.u64();
        else if (scan.is("--cache-bytes"))
            opt.cacheBytes = scan.u64();
        else if (scan.is("--cache-disk-bytes"))
            opt.cacheDiskBytes = scan.u64();
        else if (scan.is("--timeout-ms"))
            opt.timeoutMs = scan.u32();
        else if (scan.is("--prefix-steps"))
            opt.prefixSteps = scan.u64();
        else if (scan.is("--help") || scan.is("-h")) {
            usage();
            return 0;
        } else {
            scan.unknown();
        }
    }
    if (opt.socket.empty()) {
        usage();
        return 2;
    }
    if (opt.maxQueue == 0 || opt.maxBatch == 0)
        nsrf_fatal("--max-queue and --max-batch must be positive");

    serve::ResultCacheConfig cache_config;
    cache_config.dir = opt.cache;
    cache_config.maxEntries = opt.cacheEntries;
    cache_config.maxBytes = opt.cacheBytes;
    cache_config.maxDiskBytes = opt.cacheDiskBytes;
    serve::ResultCache cache(cache_config);

    serve::BatchScheduler::Config sched_config;
    sched_config.jobs = opt.jobs;
    sched_config.maxQueue = opt.maxQueue;
    sched_config.maxBatch = opt.maxBatch;
    if (opt.prefixSteps) {
        // Route cold batches through the prefix-restoring sweep:
        // warmup prefixes live in the same cache as results, so a
        // daemon restart (or a shared cache dir) resumes instead of
        // re-simulating the first prefixSteps instructions.
        sched_config.runner = snapshot::makePrefixBatchRunner(
            &cache, opt.jobs, opt.prefixSteps);
    }
    serve::BatchScheduler scheduler(&cache, sched_config);

    serve::ServerConfig server_config;
    server_config.socketPath = opt.socket;
    server_config.requestTimeoutMs = opt.timeoutMs;
    serve::Server server(server_config, &cache, &scheduler);

    std::string why;
    if (!server.start(&why))
        nsrf_fatal("cannot serve: %s", why.c_str());

    g_server = &server;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    std::fprintf(stderr, "nsrf_serve: listening on %s (%s)\n",
                 opt.socket.c_str(),
                 opt.cache.empty()
                     ? "memory-only cache"
                     : ("cache dir " + opt.cache).c_str());
    int rc = server.serve();

    // Graceful drain: finish queued/in-flight work before exiting
    // so accepted submits are never dropped.
    scheduler.drain();
    std::fprintf(stderr, "nsrf_serve: drained, final counters:\n%s",
                 server.metricsText().c_str());
    return rc;
}
