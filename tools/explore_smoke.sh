#!/bin/sh
# explore_smoke: determinism proof for the design-space autopilot.
#
#   explore_smoke.sh <nsrf_explore binary>
#
# Runs one >=48-point lattice three ways — cold with prefix
# restore, warm from the same cache, and cold with no prefix runner
# at all — and demands byte-identical frontier JSON from all three.
# The warm run must serve every cell from the cache (prefix stats
# all zero), and the cold run's prefix stats are pinned exactly:
# 56 lattice points captured on the triage rung, 28 promotions
# restored, 28 x 2000 warmup steps skipped.
set -u

explore="$1"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

run()
{
    out="$1"
    err="$2"
    shift 2
    "$explore" --app Quicksort --events 8000 \
        --orgs nsf,segmented --regs 32,64,96,128 --lines 1,2,4 \
        --miss line,live --write wa,fow --budgets 2000,8000 \
        --jobs 2 --out "$out" "$@" 2> "$err"
}

if ! run "$tmp/cold.json" "$tmp/cold.err" --cache "$tmp/cache" \
        --csv "$tmp/cold.csv" --gnuplot "$tmp/cold.gp" \
        --figure frontier.svg; then
    echo "FAIL: cold run failed"
    cat "$tmp/cold.err"
    exit 1
fi
if ! grep -q "prefix: 84 cells, 84 restored, 56 captured, 0 cold, 56000 steps skipped" \
        "$tmp/cold.err"; then
    echo "FAIL: cold run's prefix stats are off"
    cat "$tmp/cold.err"
    exit 1
fi
if ! grep -q '"schema":1' "$tmp/cold.json"; then
    echo "FAIL: frontier JSON lacks the schema tag"
    exit 1
fi
if ! grep -q '"fingerprint":"' "$tmp/cold.json"; then
    echo "FAIL: frontier JSON lacks the lattice fingerprint"
    exit 1
fi
if [ ! -s "$tmp/cold.csv" ] || [ ! -s "$tmp/cold.gp" ]; then
    echo "FAIL: CSV/gnuplot artifacts missing"
    exit 1
fi

if ! run "$tmp/warm.json" "$tmp/warm.err" --cache "$tmp/cache"; then
    echo "FAIL: warm run failed"
    cat "$tmp/warm.err"
    exit 1
fi
if ! grep -q "prefix: 0 cells, 0 restored, 0 captured, 0 cold, 0 steps skipped" \
        "$tmp/warm.err"; then
    echo "FAIL: warm run re-simulated (expected every cell cached)"
    cat "$tmp/warm.err"
    exit 1
fi
if ! cmp -s "$tmp/cold.json" "$tmp/warm.json"; then
    echo "FAIL: warm frontier differs from cold"
    exit 1
fi

if ! run "$tmp/plain.json" "$tmp/plain.err" --no-prefix \
        --cache "$tmp/plain.cache"; then
    echo "FAIL: no-prefix run failed"
    cat "$tmp/plain.err"
    exit 1
fi
if ! cmp -s "$tmp/cold.json" "$tmp/plain.json"; then
    echo "FAIL: prefix-restored frontier differs from cold-evaluated"
    exit 1
fi

echo "explore_smoke ok: frontier byte-identical cold/warm/no-prefix"
exit 0
