#!/bin/sh
# Pre-merge gate: the full check sequence a change must pass before
# it lands (see ROADMAP.md).
#
#   tools/ci.sh [source-dir]
#
# Stages (all fail-fast):
#   1. release   — RelWithDebInfo build, full ctest suite (SIMD
#                  kernels on wherever the host supports them)
#   2. simd      — on the release build: runtime scalar-fallback
#                  ctest (NSRF_SIMD=scalar) over the kernel-bearing
#                  suites, then macro_throughput --smoke, which
#                  re-runs itself under NSRF_SIMD=scalar and demands
#                  bit-identical simulated stats from both kernel
#                  sets
#   3. scalar    — NSRF_SIMD=OFF build (vector kernels compiled
#                  out entirely), full ctest suite
#   4. trace     — NSRF_TRACE=ON build, full suite incl. the
#                  trace_smoke → Perfetto-validate pipeline
#   5. asan      — ASan+UBSan build with NSRF_AUDIT=ON, full suite
#   6. tsan      — TSan build, sweep-runner thread-pool tests
#                  (including the N-thread/L-lane identity suite)
#                  plus the serve scheduler, daemon smoke, the
#                  explorer smoke (prefix-restoring batch runner),
#                  and a 4-thread macrobench smoke whose stats must
#                  match the 1-thread lane section exactly
#   7. fuzz      — time-boxed differential fuzz on the audit build
#   8. snapshot  — time-boxed fuzz with --snapshot-every: the
#                  register file is serialized, restored into a
#                  fresh instance, round-trip-compared, and the
#                  stream continues on the restored file
#
# Environment:
#   NSRF_CI_FUZZ_SECONDS      fuzz stage budget (default 30)
#   NSRF_CI_SNAPSHOT_SECONDS  snapshot fuzz budget (default 20)
#   NSRF_CI_JOBS              build/test parallelism (default: nproc)
set -eu

src_dir=${1:-.}
jobs=${NSRF_CI_JOBS:-$(nproc 2>/dev/null || echo 4)}
fuzz_seconds=${NSRF_CI_FUZZ_SECONDS:-30}
snap_seconds=${NSRF_CI_SNAPSHOT_SECONDS:-20}

cd "$src_dir"

stage()
{
    echo
    echo "=== ci: $1 ==="
}

stage "release build + full test suite"
cmake --preset release > /dev/null
cmake --build --preset release -j "$jobs"
ctest --preset release -j "$jobs"

stage "runtime scalar fallback + scalar-vs-SIMD stats cross-check"
# Same binaries, vector kernels disabled at runtime: the generator
# batch fill and the CAM group probe take their portable paths.  The
# macrobench smoke then re-runs itself with NSRF_SIMD=scalar and
# fails unless both kernel sets simulate bit-identical stats.
# SweepThreads rides along: it pins N-thread/L-lane/odd-chunk sweeps
# bit-identical to solo, and must hold on the scalar kernels too.
NSRF_SIMD=scalar ctest --preset release -j "$jobs" \
    -R 'Philox|CounterRandom|FlatIndex|Workload|workload|Snapshot|SweepPrefix|SweepThreads|Explore|explore_smoke'
# --threads 4 adds the lanes-over-4-threads section; the bench
# asserts its stats match the 1-thread lane section exactly (and the
# scalar re-run repeats the same check on the portable kernels), so
# a thread-count-dependent divergence fails this stage.
./build/bench/macro_throughput --smoke --threads 4 \
    --json build/BENCH_throughput_smoke.json

stage "scalar build (NSRF_SIMD=OFF) + full test suite"
cmake --preset scalar > /dev/null
cmake --build --preset scalar -j "$jobs"
ctest --preset scalar -j "$jobs"

stage "trace build (NSRF_TRACE=ON) + full test suite"
cmake --preset trace > /dev/null
cmake --build --preset trace -j "$jobs"
# The trace preset additionally registers trace_smoke (runs
# nsrf_sim --trace-out on a small synthetic app) and
# trace_smoke_validate (structural check of the Perfetto JSON).
ctest --preset trace -j "$jobs"

stage "asan+ubsan build (audits on) + full test suite"
cmake --preset asan > /dev/null
cmake --build --preset asan -j "$jobs"
# Per-mutation audits are quadratic over integration-scale runs and
# ASan amplifies that ~2000x; a prime sampling stride keeps hook
# coverage across the whole suite at bounded cost (unit tests and
# the fuzzer call the audits directly, unsampled).
NSRF_AUDIT_STRIDE=997 ctest --preset asan -j "$jobs"

stage "tsan build + sweep-runner thread pool + serving daemon"
cmake --preset tsan > /dev/null
cmake --build --preset tsan -j "$jobs" --target test_sweep_runner \
    test_sweep_threads test_serve_scheduler test_cam \
    test_cam_flat_index nsrf_fuzz macro_throughput \
    nsrf_serve_cli nsrf_request nsrf_explore_cli \
    test_fleet_transport test_fleet_node
# The serve scheduler (single-flight dedup, dispatcher handoff) and
# the end-to-end daemon smoke are the concurrency-heavy serving
# paths; both must be clean under TSan.  The CAM decoder and its
# flat tag index ride along: sweep workers simulate in parallel, so
# a data race hiding in the hot decoder structures would poison
# every sweep cell.
# explore_smoke rides along: the autopilot drives runCellsCached
# and the prefix-restoring batch runner on 2 sweep workers, the
# exact write path the daemon's dispatcher takes.
# The fleet transport (event loop + worker pool + wake pipe) and the
# fleet node (cross-node single-flight, replicator thread) are the
# most thread-entangled code in the tree; fleet_smoke drives the
# whole 3-node ring under TSan, peer kill included.
ctest --preset tsan -j "$jobs" \
    -R 'SweepRunner|SweepThreads|sweep_runner|ServeScheduler|ServeServer|serve_smoke|Decoder|FlatIndex|explore_smoke|FleetTransport|FleetNode|fleet_smoke'

stage "tsan macrobench smoke (4 sweep threads, identity-gated)"
# Drives the real lane engine — thread pool, group splitting,
# prefetch-pipelined lane loop — under TSan, and the bench's own
# assert fails the stage if the 4-thread stats diverge from the
# 1-thread lane section.
./build-tsan/bench/macro_throughput --smoke --threads 4 \
    --json build-tsan/BENCH_throughput_smoke.json

stage "tsan fuzz smoke (--jobs exercises the shared work queue)"
./build-tsan/tools/nsrf_fuzz --seed 1 --runs 16 --ops 300 --jobs 4

stage "differential fuzz, ${fuzz_seconds}s, sanitized + audited"
./build-asan/tools/nsrf_fuzz --duration "$fuzz_seconds" --jobs "$jobs"

stage "snapshot round-trip fuzz, ${snap_seconds}s, sanitized"
./build-asan/tools/nsrf_fuzz --duration "$snap_seconds" \
    --jobs "$jobs" --snapshot-every 64

echo
echo "=== ci: all gates passed ==="
