#!/bin/sh
# fleet_smoke: end-to-end multi-node check.
#
#   fleet_smoke.sh <nsrf_serve binary> <nsrf_request binary>
#
# Boots a 3-node localhost TCP ring (replicas=2), runs the paper
# sweep through one node, and demands stdout byte-identical to a
# single-node daemon's run of the same request.  The single-flight
# proof is counted across the fleet: the per-node simulation
# counters must SUM to the cell count — no fingerprint simulated
# twice anywhere.  Then a second, colder sweep is launched and one
# peer is SIGKILLed mid-run: the surviving nodes fall back to local
# simulation and the output must still byte-compare equal to the
# single-node reference.
set -u

serve="$1"
request="$2"
tmp=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do kill -9 "$p" 2>/dev/null; done
    rm -rf "$tmp"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $1"
    for log in "$tmp"/*.log; do
        [ -f "$log" ] && { echo "--- $log"; tail -20 "$log"; }
    done
    exit 1
}

# --- single-node reference ------------------------------------------
sock="$tmp/ref.sock"
"$serve" --socket "$sock" --cache "$tmp/cache-ref" --jobs 2 \
    2>"$tmp/ref.log" &
refpid=$!
pids="$refpid"

i=0
while [ $i -lt 100 ]; do
    if "$request" --socket "$sock" --op ping --retries 0 \
            >/dev/null 2>&1; then
        break
    fi
    sleep 0.1
    i=$((i + 1))
done
[ $i -lt 100 ] || fail "reference daemon never answered ping"

"$request" --socket "$sock" --app all --events 20000 \
    >"$tmp/ref1.out" 2>/dev/null ||
    fail "reference sweep 1 failed"
"$request" --socket "$sock" --app all --events 30000 \
    >"$tmp/ref2.out" 2>/dev/null ||
    fail "reference sweep 2 failed"
[ -s "$tmp/ref1.out" ] || fail "reference sweep produced nothing"
cells=$(wc -l <"$tmp/ref1.out")

"$request" --socket "$sock" --op shutdown >/dev/null 2>&1
wait "$refpid" || fail "reference daemon exited nonzero"
pids=""

# --- 3-node ring ----------------------------------------------------
# Fixed ports so every node can load the identical ring config at
# startup; retry on a different base if one is already taken.
attempt=0
up=0
while [ $attempt -lt 5 ] && [ $up -eq 0 ]; do
    base=$((20101 + ($$ + attempt * 37) % 20000))
    p1=$base
    p2=$((base + 1))
    p3=$((base + 2))
    cat >"$tmp/ring.json" <<EOF
{"version":1,"vnodes":64,"replicas":2,"nodes":[
 {"id":"n1","host":"127.0.0.1","port":$p1},
 {"id":"n2","host":"127.0.0.1","port":$p2},
 {"id":"n3","host":"127.0.0.1","port":$p3}]}
EOF
    pids=""
    for n in 1 2 3; do
        eval "port=\$p$n"
        "$serve" --listen "127.0.0.1:$port" --ring "$tmp/ring.json" \
            --node-id "n$n" --cache "$tmp/cache-n$n" --jobs 2 \
            2>"$tmp/n$n.log" &
        pids="$pids $!"
    done
    up=1
    for n in 1 2 3; do
        eval "port=\$p$n"
        i=0
        while [ $i -lt 100 ]; do
            if "$request" --connect "127.0.0.1:$port" --op ping \
                    --retries 0 >/dev/null 2>&1; then
                break
            fi
            # A node that lost the bind race dies fast; stop waiting.
            if grep -q "cannot serve" "$tmp/n$n.log" 2>/dev/null; then
                i=100
                break
            fi
            sleep 0.1
            i=$((i + 1))
        done
        [ $i -lt 100 ] || up=0
    done
    if [ $up -eq 0 ]; then
        for p in $pids; do kill -9 "$p" 2>/dev/null; done
        for p in $pids; do wait "$p" 2>/dev/null; done
        pids=""
        attempt=$((attempt + 1))
    fi
done
[ $up -eq 1 ] || fail "could not boot the 3-node ring"

# --- sweep 1: byte-identity + fleet-wide single-flight --------------
"$request" --connect "127.0.0.1:$p1" --app all --events 20000 \
    >"$tmp/fleet1.out" 2>"$tmp/fleet1.err" ||
    fail "fleet sweep 1 failed"
cmp -s "$tmp/ref1.out" "$tmp/fleet1.out" || {
    diff "$tmp/ref1.out" "$tmp/fleet1.out" | head -5
    fail "fleet sweep 1 differs from single-node reference"
}

sims_total=0
for n in 1 2 3; do
    eval "port=\$p$n"
    sims=$("$request" --connect "127.0.0.1:$port" --op stats \
        2>/dev/null | tr -d ' ' |
        sed -n 's/.*"simulations":\([0-9]*\).*/\1/p')
    [ -n "$sims" ] || fail "node n$n reported no simulation counter"
    sims_total=$((sims_total + sims))
done
[ "$sims_total" -eq "$cells" ] ||
    fail "expected $cells simulations fleet-wide, counted $sims_total"

# --- sweep 2: kill a peer mid-run -----------------------------------
"$request" --connect "127.0.0.1:$p1" --app all --events 30000 \
    >"$tmp/fleet2.out" 2>"$tmp/fleet2.err" &
sweep=$!
sleep 0.3
# SIGKILL, not shutdown: the peer vanishes without a drain, and the
# survivors must degrade to local simulation, not to errors.
set -- $pids
pid1=$1
pid2=$2
pid3=$3
kill -9 "$pid3" 2>/dev/null
wait "$sweep" || fail "fleet sweep 2 failed after peer kill"
cmp -s "$tmp/ref2.out" "$tmp/fleet2.out" || {
    diff "$tmp/ref2.out" "$tmp/fleet2.out" | head -5
    fail "post-kill sweep differs from single-node reference"
}

# --- graceful shutdown of the survivors -----------------------------
for n in 1 2; do
    eval "port=\$p$n"
    "$request" --connect "127.0.0.1:$port" --op shutdown \
        >/dev/null 2>&1
done
rc=0
wait "$pid1" || rc=$?
wait "$pid2" || rc=$?
wait "$pid3" 2>/dev/null # reap the killed peer
pids=""
[ $rc -eq 0 ] || fail "a surviving node exited nonzero"

echo "fleet_smoke ok: $cells cells, $sims_total sims fleet-wide," \
    "peer-kill sweep byte-identical"
exit 0
