#!/bin/sh
# Run every figure/ablation bench with --json, collecting the ASCII
# reports and the structured per-cell results under bench-results/.
#
#   tools/run_benches.sh [build-dir] [out-dir]
#
# Environment:
#   NSRF_BENCH_EVENTS  per-run event budget override
#   NSRF_BENCH_JOBS    worker threads per bench (default: all cores)
set -eu

build_dir=${1:-build}
out_dir=${2:-bench-results}
jobs=${NSRF_BENCH_JOBS:-0}

if [ ! -d "$build_dir/bench" ]; then
    echo "error: '$build_dir' is not a build tree (run:" >&2
    echo "  cmake -B $build_dir -S . && cmake --build $build_dir -j)" >&2
    exit 1
fi

mkdir -p "$out_dir"

# Sweep benches: everything that takes --jobs/--json.
sweep_benches="
fig09_utilization
fig10_reload_traffic
fig11_resident_contexts
fig12_reload_vs_size
fig13_line_size
fig14_overhead
compare_organizations
ablate_spill_policy
ablate_write_policy
ablate_interleaving
ablate_cid_space
"

# Analytic/VLSI benches: no simulation sweep, ASCII report only.
plain_benches="
table1_benchmarks
fig06_access_time
fig07_area_3port
fig08_area_6port
energy_estimate
"

status=0
for bench in $sweep_benches; do
    exe="$build_dir/bench/$bench"
    echo "== $bench =="
    if "$exe" --jobs "$jobs" --json "$out_dir/$bench.json" \
        > "$out_dir/$bench.txt" 2> "$out_dir/$bench.log"; then
        grep -E '^\s*\[(HOLDS|DIFFERS)\]' "$out_dir/$bench.txt" || :
    else
        echo "FAILED (see $out_dir/$bench.log)" >&2
        status=1
    fi
done

for bench in $plain_benches; do
    exe="$build_dir/bench/$bench"
    echo "== $bench =="
    if "$exe" > "$out_dir/$bench.txt" 2> "$out_dir/$bench.log"; then
        grep -E '^\s*\[(HOLDS|DIFFERS)\]' "$out_dir/$bench.txt" || :
    else
        echo "FAILED (see $out_dir/$bench.log)" >&2
        status=1
    fi
done

echo
echo "results in $out_dir/ (ASCII .txt, structured .json)"
exit $status
