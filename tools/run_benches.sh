#!/bin/sh
# Run every figure/ablation bench with --json, collecting the ASCII
# reports and the structured per-cell results under bench-results/.
#
#   tools/run_benches.sh [build-dir] [out-dir]
#
# Environment:
#   NSRF_BENCH_EVENTS  per-run event budget override (positive int);
#                      exported to every bench, including the no-flag
#                      ones (table1_benchmarks, validate_synthetic)
#   NSRF_BENCH_JOBS    worker threads per bench (default: all cores)
#   NSRF_BENCH_THREADS sweep threads for the macrobench's lane
#                      section (default: all cores); >1 adds the
#                      lanes-over-N-threads section, identity-gated
#                      against the 1-thread run by the bench itself
#   NSRF_BENCH_CACHE   content-addressed result cache directory; a
#                      repeated run with the same budget serves every
#                      sweep cell from the cache with zero
#                      re-simulation (see docs/EXPERIMENTS.md)
#
# The run is all-or-nothing: an INCOMPLETE marker sits in the output
# directory from the first bench until the last one succeeds, and the
# script stops at the first failure.  A directory containing
# INCOMPLETE (or no MANIFEST) must not be treated as a full result
# set.
set -eu

build_dir=${1:-build}
out_dir=${2:-bench-results}
jobs=${NSRF_BENCH_JOBS:-0}

if [ ! -d "$build_dir/bench" ]; then
    echo "error: '$build_dir' is not a build tree (run:" >&2
    echo "  cmake -B $build_dir -S . && cmake --build $build_dir -j)" >&2
    exit 1
fi

# An invalid budget would be silently ignored by the benches (they
# fall back to per-bench defaults), making the sweep inconsistent —
# reject it up front instead.
events=${NSRF_BENCH_EVENTS:-}
if [ -n "$events" ]; then
    case $events in
        *[!0-9]* | '' | 0)
            echo "error: NSRF_BENCH_EVENTS='$events' is not a" \
                 "positive integer" >&2
            exit 1
            ;;
    esac
    export NSRF_BENCH_EVENTS
fi

mkdir -p "$out_dir"
rm -f "$out_dir/MANIFEST"
: > "$out_dir/INCOMPLETE"

# Sweep benches: everything that takes --jobs/--json.
sweep_benches="
fig09_utilization
fig10_reload_traffic
fig11_resident_contexts
fig12_reload_vs_size
fig13_line_size
fig14_overhead
compare_organizations
ablate_spill_policy
ablate_write_policy
ablate_interleaving
ablate_cid_space
"

# No-flag benches: analytic/VLSI reports plus the flagless
# simulation checks; budget comes only from NSRF_BENCH_EVENTS.
plain_benches="
table1_benchmarks
validate_synthetic
fig06_access_time
fig07_area_3port
fig08_area_6port
energy_estimate
"

fail()
{
    echo "FAILED: $1 (see $out_dir/$1.log)" >&2
    echo "$out_dir/ is partial — INCOMPLETE marker left in place" >&2
    exit 1
}

for bench in $sweep_benches; do
    exe="$build_dir/bench/$bench"
    echo "== $bench =="
    "$exe" --jobs "$jobs" --json "$out_dir/$bench.json" \
        > "$out_dir/$bench.txt" 2> "$out_dir/$bench.log" \
        || fail "$bench"
    grep -E '^\s*\[(HOLDS|DIFFERS)\]' "$out_dir/$bench.txt" || :
done

for bench in $plain_benches; do
    exe="$build_dir/bench/$bench"
    echo "== $bench =="
    "$exe" > "$out_dir/$bench.txt" 2> "$out_dir/$bench.log" \
        || fail "$bench"
    grep -E '^\s*\[(HOLDS|DIFFERS)\]' "$out_dir/$bench.txt" || :
done

# Host-throughput macrobench (steps/sec, not a simulated figure).
# It takes --json directly, so the structured result lands in the
# manifest alongside the figure data and a regression in simulator
# speed shows up in the same place as a regression in its output.
# NSRF_BENCH_THREADS > 1 adds the lanes-over-N-threads section; the
# bench itself asserts the multi-thread stats are bit-identical to
# the 1-thread lane section, so divergence fails this script.
threads=${NSRF_BENCH_THREADS:-$(nproc 2>/dev/null || echo 1)}
case $threads in
    *[!0-9]* | '' | 0)
        echo "error: NSRF_BENCH_THREADS='$threads' is not a" \
             "positive integer" >&2
        exit 1
        ;;
esac
echo "== macro_throughput =="
"$build_dir/bench/macro_throughput" \
    --threads "$threads" \
    --json "$out_dir/macro_throughput.json" \
    > "$out_dir/macro_throughput.txt" \
    2> "$out_dir/macro_throughput.log" || fail "macro_throughput"
grep -E '^\s*\[(HOLDS|DIFFERS)\]' "$out_dir/macro_throughput.txt" || :

# Register-file microbenches (google-benchmark): per-op costs plus
# the packed-byte vs bit-vector metadata ablation behind the SoA
# hot-state layout.  JSON goes in the result set like the rest.
echo "== micro_regfile =="
"$build_dir/bench/micro_regfile" \
    --benchmark_out="$out_dir/micro_regfile.json" \
    --benchmark_out_format=json \
    > "$out_dir/micro_regfile.txt" \
    2> "$out_dir/micro_regfile.log" || fail "micro_regfile"

# Design-space autopilot: explore a 56-point lattice and record the
# frontier artifact.  The promotion rung is timed twice — resuming
# from the triage rung's prefix snapshots vs resimulating cold —
# from identical warm rung-0 caches, so the reported speedup
# isolates exactly what prefix restore buys the halving schedule.
# Both paths must produce byte-identical frontier JSON.
echo "== nsrf_explore =="
explore="$build_dir/tools/nsrf_explore"
ecache="$out_dir/explore.cache"
explore_lattice="--app Quicksort --orgs nsf,segmented \
    --regs 32,64,96,128 --lines 1,2,4 --miss line,live \
    --write wa,fow --events 80000"
rm -rf "$ecache" "$ecache.cold"
# Prewarm: the triage rung alone, capturing prefix snapshots and
# rung-0 results so both timed legs start from the same warm cache.
$explore $explore_lattice --budgets 60000 --jobs "$jobs" \
    --cache "$ecache" --out "$out_dir/explore_rung0.json" \
    2> "$out_dir/nsrf_explore.log" || fail "nsrf_explore"
cp -r "$ecache" "$ecache.cold"
t0=$(date +%s%N)
$explore $explore_lattice --budgets 60000,80000 --jobs "$jobs" \
    --cache "$ecache" --out "$out_dir/explore_frontier.json" \
    --csv "$out_dir/explore_frontier.csv" \
    --gnuplot "$out_dir/explore_frontier.gp" \
    --figure "$out_dir/explore_frontier.svg" \
    2>> "$out_dir/nsrf_explore.log" || fail "nsrf_explore"
t1=$(date +%s%N)
$explore $explore_lattice --budgets 60000,80000 --jobs "$jobs" \
    --no-prefix --cache "$ecache.cold" \
    --out "$out_dir/explore_frontier_cold.json" \
    2>> "$out_dir/nsrf_explore.log" || fail "nsrf_explore"
t2=$(date +%s%N)
cmp -s "$out_dir/explore_frontier.json" \
    "$out_dir/explore_frontier_cold.json" || fail "nsrf_explore"
rm -rf "$ecache" "$ecache.cold" "$out_dir/explore_frontier_cold.json"
explore_speedup=$(awk "BEGIN { p = $t1 - $t0; c = $t2 - $t1; \
    printf \"%.2f\", (p > 0) ? c / p : 0 }")
explore_fp=$(sed -n 's/.*"fingerprint":"\([0-9a-f]*\)".*/\1/p' \
    "$out_dir/explore_frontier.json")
echo "promotion speedup ${explore_speedup}x (prefix-restored vs cold)"

# Which kernel set produced these numbers matters for comparing
# manifests across hosts; the macrobench records the resolved level
# (avx2/sse2/scalar) in its JSON, so lift it from there.
simd=$(sed -n 's/.*"simd":"\([a-z0-9]*\)".*/\1/p' \
    "$out_dir/macro_throughput.json")

{
    echo "date: $(date -u +%Y-%m-%dT%H:%M:%SZ)"
    echo "events: ${NSRF_BENCH_EVENTS:-default}"
    echo "jobs: $jobs"
    echo "threads: $threads"
    echo "simd: ${simd:-unknown}"
    echo "cache: ${NSRF_BENCH_CACHE:-none}"
    echo "benches: $(($(echo $sweep_benches $plain_benches | wc -w) + 2))"
    echo "explore: fingerprint=${explore_fp:-unknown}" \
         "promotion-speedup=${explore_speedup}x"
} > "$out_dir/MANIFEST"
rm -f "$out_dir/INCOMPLETE"

echo
echo "results in $out_dir/ (ASCII .txt, structured .json, MANIFEST)"
