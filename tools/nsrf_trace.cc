/**
 * @file
 * nsrf_trace: inspect a captured binary trace.
 *
 * Prints the event mix, context statistics (activations, lifetime,
 * concurrency), register-reference statistics, and optionally the
 * first N events in readable form.
 *
 *     nsrf_sim --app Gamteb --events 100000 --record g.trc
 *     nsrf_trace g.trc
 *     nsrf_trace g.trc --dump 50
 *
 * With --check-perfetto it instead validates a timeline JSON file
 * written by `nsrf_sim --trace-out` (structure + balanced B/E
 * spans), for CI and scripts:
 *
 *     nsrf_trace --check-perfetto g.json
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>

#include "nsrf/common/options.hh"
#include "nsrf/sim/tracefile.hh"
#include "nsrf/stats/counters.hh"
#include "nsrf/stats/table.hh"
#include "nsrf/trace/export.hh"

using namespace nsrf;

namespace
{

const char *
kindName(sim::EventKind kind)
{
    switch (kind) {
      case sim::EventKind::Instr: return "instr";
      case sim::EventKind::Call: return "call";
      case sim::EventKind::Return: return "return";
      case sim::EventKind::Spawn: return "spawn";
      case sim::EventKind::Terminate: return "terminate";
      case sim::EventKind::Switch: return "switch";
      case sim::EventKind::FreeReg: return "freereg";
      case sim::EventKind::End: return "end";
    }
    return "?";
}

void
dumpEvents(sim::FileTraceGenerator &trace, std::uint64_t count)
{
    sim::TraceEvent ev;
    std::uint64_t n = 0;
    while (n < count && trace.next(ev) &&
           ev.kind != sim::EventKind::End) {
        std::printf("%8llu  %-9s",
                    static_cast<unsigned long long>(n),
                    kindName(ev.kind));
        if (ev.kind == sim::EventKind::Instr) {
            std::printf(" srcs=[");
            for (int i = 0; i < ev.srcCount; ++i)
                std::printf("%sr%u", i ? "," : "", ev.src[i]);
            std::printf("]");
            if (ev.hasDst)
                std::printf(" dst=r%u", ev.dst);
            if (ev.memRef)
                std::printf(" mem");
        } else if (ev.ctx != sim::invalidHandle) {
            std::printf(" ctx=%llu",
                        static_cast<unsigned long long>(ev.ctx));
        }
        std::printf("\n");
        ++n;
    }
    trace.reset();
}

/** Validate a Perfetto JSON document written by --trace-out. */
int
checkPerfetto(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
        return 1;
    }
    std::string doc;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        doc.append(buf, got);
    std::fclose(f);

    std::string why;
    if (!trace::validatePerfettoJson(doc, &why)) {
        std::fprintf(stderr, "%s: INVALID: %s\n", path.c_str(),
                     why.c_str());
        return 1;
    }
    std::printf("%s: OK (%zu bytes)\n", path.c_str(), doc.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: nsrf_trace FILE [--dump N]\n"
                     "       nsrf_trace --check-perfetto FILE\n");
        return 2;
    }
    if (std::string(argv[1]) == "--check-perfetto") {
        if (argc < 3) {
            std::fprintf(stderr,
                         "usage: nsrf_trace --check-perfetto FILE\n");
            return 2;
        }
        return checkPerfetto(argv[2]);
    }
    std::string path = argv[1];
    std::uint64_t dump = 0;
    common::OptionScanner scan(argc - 1, argv + 1);
    while (scan.next()) {
        if (scan.is("--dump"))
            dump = scan.u64();
        else
            scan.unknown();
    }

    sim::FileTraceGenerator trace(path);
    std::printf("%s: %llu events\n\n", path.c_str(),
                static_cast<unsigned long long>(trace.size()));

    if (dump) {
        dumpEvents(trace, dump);
        std::printf("\n");
    }

    // One pass of analysis.
    std::map<int, std::uint64_t> kinds;
    std::map<sim::CtxHandle, std::uint64_t> birth;
    stats::RunningMean lifetime;
    stats::RunningMean run_length;
    std::set<sim::CtxHandle> live;
    std::size_t peak_live = 0;
    std::uint64_t reads = 0, writes = 0, mem_refs = 0;
    std::uint64_t since_switch = 0;
    std::uint64_t n = 0;

    sim::TraceEvent ev;
    while (trace.next(ev) && ev.kind != sim::EventKind::End) {
        ++kinds[static_cast<int>(ev.kind)];
        switch (ev.kind) {
          case sim::EventKind::Instr:
            reads += ev.srcCount;
            writes += ev.hasDst ? 1 : 0;
            mem_refs += ev.memRef ? 1 : 0;
            ++since_switch;
            break;
          case sim::EventKind::Call:
          case sim::EventKind::Spawn:
            birth[ev.ctx] = n;
            live.insert(ev.ctx);
            peak_live = std::max(peak_live, live.size());
            if (ev.kind == sim::EventKind::Call) {
                run_length.add(double(since_switch));
                since_switch = 0;
            }
            break;
          case sim::EventKind::Return:
          case sim::EventKind::Switch:
            run_length.add(double(since_switch));
            since_switch = 0;
            break;
          case sim::EventKind::Terminate:
            break;
          default:
            break;
        }
        if (ev.kind == sim::EventKind::Return ||
            ev.kind == sim::EventKind::Terminate) {
            // The Return event names the *caller*; the dying context
            // is whichever live context was born latest — good
            // enough for lifetime statistics on sequential traces.
            sim::CtxHandle dead = ev.ctx;
            if (ev.kind == sim::EventKind::Return && !live.empty())
                dead = *live.rbegin();
            auto it = birth.find(dead);
            if (it != birth.end()) {
                lifetime.add(double(n - it->second));
                birth.erase(it);
            }
            live.erase(dead);
        }
        ++n;
    }

    stats::TextTable mix;
    mix.header({"Event", "Count", "Share"});
    for (const auto &[kind, count] : kinds) {
        mix.row({kindName(static_cast<sim::EventKind>(kind)),
                 stats::TextTable::integer(count),
                 stats::TextTable::percent(double(count) /
                                           double(n))});
    }
    std::printf("%s\n", mix.render().c_str());

    stats::TextTable summary;
    summary.header({"Metric", "Value"});
    summary.row({"register reads",
                 stats::TextTable::integer(reads)});
    summary.row({"register writes",
                 stats::TextTable::integer(writes)});
    summary.row({"memory-referencing instructions",
                 stats::TextTable::integer(mem_refs)});
    summary.row({"mean run length between switch points",
                 stats::TextTable::num(run_length.mean(), 1)});
    summary.row({"mean activation lifetime (events)",
                 stats::TextTable::num(lifetime.mean(), 1)});
    summary.row({"peak live contexts",
                 stats::TextTable::integer(peak_live)});
    summary.row({"contexts created",
                 stats::TextTable::integer(
                     kinds[static_cast<int>(
                         sim::EventKind::Call)] +
                     kinds[static_cast<int>(
                         sim::EventKind::Spawn)])});
    std::printf("%s", summary.render().c_str());
    return 0;
}
