#!/bin/sh
# cache_smoke: warm-start proof for `nsrf_sim --cache`.
#
#   cache_smoke.sh <nsrf_sim binary>
#
# Runs the full-app JSON sweep twice against one cache directory:
# the first run simulates everything, the second must simulate
# nothing (all hits) and print byte-identical JSON.
set -u

sim="$1"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

if ! "$sim" --app all --json --events 20000 --jobs 2 \
        --cache "$tmp/cache" >"$tmp/cold.json" 2>"$tmp/cold.err"; then
    echo "FAIL: cold run failed"
    cat "$tmp/cold.err"
    exit 1
fi
if ! grep -q "0 hits" "$tmp/cold.err"; then
    echo "FAIL: cold run reported unexpected hits"
    cat "$tmp/cold.err"
    exit 1
fi

if ! "$sim" --app all --json --events 20000 --jobs 2 \
        --cache "$tmp/cache" >"$tmp/warm.json" 2>"$tmp/warm.err"; then
    echo "FAIL: warm run failed"
    cat "$tmp/warm.err"
    exit 1
fi
if ! grep -q " 0 misses" "$tmp/warm.err"; then
    echo "FAIL: warm run re-simulated (expected 0 misses)"
    cat "$tmp/warm.err"
    exit 1
fi
if ! cmp -s "$tmp/cold.json" "$tmp/warm.json"; then
    echo "FAIL: warm JSON differs from cold"
    diff "$tmp/cold.json" "$tmp/warm.json" | head -5
    exit 1
fi
echo "cache_smoke ok: warm run hit every cell, JSON byte-identical"
exit 0
