/**
 * @file
 * nsrf_explore: deterministic design-space autopilot.
 *
 * Enumerates a declarative config lattice, runs successive halving
 * over increasing instruction budgets — promotions resume from the
 * short rung's prefix snapshots instead of resimulating the warmup
 * — and emits the exact Pareto frontier (overhead, reload traffic,
 * area, access time) as schema-versioned JSON plus optional CSV and
 * gnuplot figure artifacts.  The same lattice and seed produce
 * byte-identical artifacts on every run, warm or cold, offline or
 * against a daemon.
 *
 *     nsrf_explore --cache /tmp/nsrf.cache --out frontier.json
 *     nsrf_explore --socket /tmp/nsrf.sock --out frontier.json
 *     nsrf_explore --orgs nsf,segmented --regs 64,128,256 \
 *         --lines 1,2,4 --events 60000 --budgets 15000,60000
 */

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#include <vector>

#include "nsrf/common/logging.hh"
#include "nsrf/common/options.hh"
#include "nsrf/explore/search.hh"
#include "nsrf/serve/json_in.hh"
#include "nsrf/stats/json.hh"

using namespace nsrf;

namespace
{

struct Options
{
    explore::ExploreOptions search;
    std::string cache;   //!< offline result/snapshot store dir
    std::string socket;  //!< daemon mode instead of offline
    unsigned jobs = 1;
    bool noPrefix = false; //!< cold batches (baseline measurement)
    unsigned timeoutMs = 300'000;

    std::string out;     //!< frontier JSON path; empty = stdout
    std::string csv;     //!< CSV artifact path
    std::string gnuplot; //!< gnuplot script path (needs --csv)
    std::string figure = "frontier.svg"; //!< plot output the script
                                         //!< renders
};

void
usage()
{
    std::puts(
        "usage: nsrf_explore [options]\n"
        "lattice (CSV-valued axes):\n"
        "  --app NAME             workload (default Quicksort)\n"
        "  --events N             trace length = full budget\n"
        "  --seed N               workload seed override\n"
        "  --orgs LIST            nsf,segmented,conventional,windowed\n"
        "  --regs LIST            total registers (default 64,128,256)\n"
        "  --lines LIST           registers per line (default 1,2,4)\n"
        "  --miss LIST            line|live|single (default line)\n"
        "  --write LIST           wa|fow (default wa)\n"
        "  --repl LIST            lru|fifo|random (default lru)\n"
        "  --read-ports LIST      (default 2)\n"
        "  --write-ports LIST     (default 1)\n"
        "search:\n"
        "  --budgets LIST         instruction budgets per rung,\n"
        "                         increasing (default events/4,events)\n"
        "  --keep FRACTION        survivors per rung (default 0.5)\n"
        "  --prefix-steps N       snapshot prefix (default budgets[0])\n"
        "  --no-prefix            cold batches (baseline timing)\n"
        "  --jobs N               sweep workers (default 1)\n"
        "evaluation:\n"
        "  --cache DIR            offline, cached in DIR (default:\n"
        "                         offline, memory-only)\n"
        "  --socket PATH          evaluate via a nsrf_serve daemon\n"
        "  --timeout-ms N         daemon reply bound (default 300000)\n"
        "artifacts:\n"
        "  --out PATH             frontier JSON (default stdout)\n"
        "  --csv PATH             per-point CSV\n"
        "  --gnuplot PATH         gnuplot script (requires --csv)\n"
        "  --figure PATH          figure the script renders (default\n"
        "                         frontier.svg)");
}

std::vector<std::string>
splitCsv(const std::string &text)
{
    std::vector<std::string> out;
    std::string item;
    std::istringstream in(text);
    while (std::getline(in, item, ','))
        out.push_back(item);
    return out;
}

std::vector<unsigned>
splitCsvU32(const std::string &flag, const std::string &text)
{
    std::vector<unsigned> out;
    for (const std::string &item : splitCsv(text))
        out.push_back(common::parseU32(flag, item.c_str()));
    return out;
}

std::vector<std::uint64_t>
splitCsvU64(const std::string &flag, const std::string &text)
{
    std::vector<std::uint64_t> out;
    for (const std::string &item : splitCsv(text))
        out.push_back(common::parseU64(flag, item.c_str()));
    return out;
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    explore::LatticeSpec &lattice = opt.search.lattice;
    common::OptionScanner scan(argc, argv);
    while (scan.next()) {
        if (scan.is("--app")) {
            lattice.app = scan.value();
        } else if (scan.is("--events")) {
            lattice.events = scan.u64();
        } else if (scan.is("--seed")) {
            lattice.seed = scan.u64();
        } else if (scan.is("--orgs")) {
            lattice.orgs = splitCsv(scan.value());
        } else if (scan.is("--regs")) {
            lattice.totalRegs = splitCsvU32("--regs", scan.value());
        } else if (scan.is("--lines")) {
            lattice.regsPerLine =
                splitCsvU32("--lines", scan.value());
        } else if (scan.is("--miss")) {
            lattice.missPolicies = splitCsv(scan.value());
        } else if (scan.is("--write")) {
            lattice.writePolicies = splitCsv(scan.value());
        } else if (scan.is("--repl")) {
            lattice.replacements = splitCsv(scan.value());
        } else if (scan.is("--read-ports")) {
            lattice.readPorts =
                splitCsvU32("--read-ports", scan.value());
        } else if (scan.is("--write-ports")) {
            lattice.writePorts =
                splitCsvU32("--write-ports", scan.value());
        } else if (scan.is("--budgets")) {
            opt.search.budgets =
                splitCsvU64("--budgets", scan.value());
        } else if (scan.is("--keep")) {
            opt.search.keepFraction = std::atof(scan.value());
        } else if (scan.is("--prefix-steps")) {
            opt.search.prefixSteps = scan.u64();
        } else if (scan.is("--no-prefix")) {
            opt.noPrefix = true;
        } else if (scan.is("--jobs")) {
            opt.jobs = scan.u32();
        } else if (scan.is("--cache")) {
            opt.cache = scan.value();
        } else if (scan.is("--socket")) {
            opt.socket = scan.value();
        } else if (scan.is("--timeout-ms")) {
            opt.timeoutMs = scan.u32();
        } else if (scan.is("--out")) {
            opt.out = scan.value();
        } else if (scan.is("--csv")) {
            opt.csv = scan.value();
        } else if (scan.is("--gnuplot")) {
            opt.gnuplot = scan.value();
        } else if (scan.is("--figure")) {
            opt.figure = scan.value();
        } else if (scan.is("--help") || scan.is("-h")) {
            usage();
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n",
                         scan.arg().c_str());
            return false;
        }
    }
    return true;
}

/** One daemon round trip (same framing as nsrf_request). */
bool
exchange(const std::string &socket, unsigned timeoutMs,
         const std::string &request, std::string *reply)
{
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (socket.empty() || socket.size() >= sizeof(addr.sun_path)) {
        std::fprintf(stderr, "bad socket path\n");
        return false;
    }
    std::memcpy(addr.sun_path, socket.c_str(), socket.size() + 1);

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        std::fprintf(stderr, "socket: %s\n", std::strerror(errno));
        return false;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        std::fprintf(stderr, "connect %s: %s\n", socket.c_str(),
                     std::strerror(errno));
        ::close(fd);
        return false;
    }
    timeval tv;
    tv.tv_sec = timeoutMs / 1000;
    tv.tv_usec = static_cast<long>(timeoutMs % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

    std::string line = request + "\n";
    std::size_t sent = 0;
    while (sent < line.size()) {
        ssize_t n = ::send(fd, line.data() + sent,
                           line.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            std::fprintf(stderr, "send: %s\n", std::strerror(errno));
            ::close(fd);
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }

    reply->clear();
    char chunk[4096];
    while (reply->find('\n') == std::string::npos) {
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            std::fprintf(stderr, "recv: %s\n", std::strerror(errno));
            ::close(fd);
            return false;
        }
        if (n == 0)
            break;
        reply->append(chunk, static_cast<std::size_t>(n));
    }
    ::close(fd);
    std::size_t nl = reply->find('\n');
    if (nl == std::string::npos) {
        std::fprintf(stderr, "no reply (daemon gone?)\n");
        return false;
    }
    reply->resize(nl);
    return true;
}

/** Serialize one submit request for @p batch. */
std::string
submitRequest(const std::vector<serve::CellParams> &batch)
{
    stats::JsonWriter json;
    json.beginObject();
    json.field("op", "submit");
    json.key("cells").beginArray();
    for (const serve::CellParams &c : batch) {
        json.beginObject();
        json.field("app", c.app);
        json.field("org", regfile::organizationName(c.org));
        if (c.totalRegs)
            json.field("regs", c.totalRegs);
        json.field("line", c.regsPerLine);
        json.field("miss", serve::missPolicyName(c.miss));
        json.field("write", serve::writePolicyName(c.write));
        json.field("repl", cam::replacementName(c.repl));
        json.field("mech", serve::mechanismName(c.mech));
        json.field("valid", c.trackValid);
        json.field("bg", c.background);
        json.field("events", c.events);
        if (c.seed)
            json.field("seed", c.seed);
        if (c.cap)
            json.field("cap", c.cap);
        json.endObject();
    }
    json.endArray();
    json.endObject();
    return json.str();
}

/**
 * Daemon-backed evaluator: submits each rung over the socket
 * (chunked to the daemon's per-request cell bound) and reads the
 * scores out of the replies.  The daemon serves exact results in
 * round-trip doubles, so the scores — and therefore the frontier
 * artifact — are byte-identical to offline evaluation.
 */
explore::CellEvaluator
makeDaemonEvaluator(const std::string &socket, unsigned timeoutMs)
{
    return [socket, timeoutMs](
               const std::vector<serve::CellParams> &batch,
               std::vector<explore::SimScore> *scores,
               std::string *why) {
        auto fail = [&](const std::string &msg) {
            if (why)
                *why = msg;
            return false;
        };
        scores->clear();
        scores->reserve(batch.size());
        constexpr std::size_t kChunk = 128;
        for (std::size_t at = 0; at < batch.size(); at += kChunk) {
            std::vector<serve::CellParams> chunk(
                batch.begin() + static_cast<std::ptrdiff_t>(at),
                batch.begin() +
                    static_cast<std::ptrdiff_t>(
                        std::min(at + kChunk, batch.size())));
            std::string reply_line;
            if (!exchange(socket, timeoutMs, submitRequest(chunk),
                          &reply_line)) {
                return fail("daemon exchange failed");
            }
            serve::json::Value reply;
            std::string parse_why;
            if (!serve::json::parse(reply_line, &reply,
                                    &parse_why)) {
                return fail("malformed reply: " + parse_why);
            }
            if (!reply.getBool("ok", false))
                return fail("daemon error: " +
                            reply.getString("error", "?"));
            const serve::json::Value *cells = reply.find("cells");
            if (!cells || !cells->isArray() ||
                cells->array.size() != chunk.size()) {
                return fail("short submit reply");
            }
            for (const auto &cell : cells->array) {
                std::string error = cell.getString("error", "");
                const serve::json::Value *result =
                    cell.find("result");
                if (!error.empty() || !result ||
                    !result->isObject()) {
                    return fail(
                        cell.getString("label", "?") + ": " +
                        (error.empty() ? "no result" : error));
                }
                explore::SimScore score;
                score.overheadFraction =
                    result->getNumber("overheadFraction", 0.0);
                score.reloadsPerInstr =
                    result->getNumber("reloadsPerInstr", 0.0);
                scores->push_back(score);
            }
        }
        return true;
    };
}

bool
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
    out.flush();
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt)) {
        usage();
        return 2;
    }
    if (!opt.socket.empty() && !opt.cache.empty()) {
        std::fprintf(stderr,
                     "--socket and --cache are exclusive\n");
        return 2;
    }
    if (!opt.gnuplot.empty() && opt.csv.empty()) {
        std::fprintf(stderr, "--gnuplot requires --csv\n");
        return 2;
    }
    if (!(opt.search.keepFraction > 0.0) ||
        opt.search.keepFraction > 1.0) {
        std::fprintf(stderr, "--keep must be in (0, 1]\n");
        return 2;
    }

    // Default the prefix to the first budget so the triage rung
    // captures what every promotion restores.
    std::uint64_t prefixSteps = opt.search.prefixSteps;
    if (prefixSteps == 0) {
        if (!opt.search.budgets.empty()) {
            prefixSteps = opt.search.budgets.front();
        } else {
            prefixSteps = std::max<std::uint64_t>(
                1, opt.search.lattice.events / 4);
        }
    }

    explore::CellEvaluator evaluate;
    std::unique_ptr<serve::ResultCache> cache;
    snapshot::PrefixSweepStats prefix_stats;
    if (!opt.socket.empty()) {
        evaluate = makeDaemonEvaluator(opt.socket, opt.timeoutMs);
    } else {
        serve::ResultCacheConfig cache_config;
        cache_config.dir = opt.cache; // empty = memory-only
        cache = std::make_unique<serve::ResultCache>(cache_config);
        if (opt.noPrefix) {
            evaluate = explore::makeOfflineEvaluator(cache.get(),
                                                     opt.jobs, 0);
        } else {
            evaluate = explore::makeOfflineEvaluator(
                cache.get(), opt.jobs, prefixSteps, &prefix_stats);
        }
    }

    explore::ExploreReport report;
    std::string why;
    if (!explore::runExploration(opt.search, evaluate, &report,
                                 &why)) {
        std::fprintf(stderr, "explore: %s\n", why.c_str());
        return 1;
    }

    std::string json = explore::reportJson(report);
    if (opt.out.empty()) {
        std::printf("%s\n", json.c_str());
    } else if (!writeFile(opt.out, json + "\n")) {
        return 1;
    }
    if (!opt.csv.empty() &&
        !writeFile(opt.csv, explore::reportCsv(report))) {
        return 1;
    }
    if (!opt.gnuplot.empty() &&
        !writeFile(opt.gnuplot,
                   explore::reportGnuplot(report, opt.csv,
                                          opt.figure))) {
        return 1;
    }

    std::fprintf(
        stderr,
        "lattice: %zu combinations, %zu invalid, %zu points; "
        "frontier: %zu\n",
        report.lattice.combinations, report.lattice.invalid,
        report.lattice.points, report.frontier.size());
    if (!opt.socket.empty()) {
        std::fprintf(stderr, "evaluated via daemon %s\n",
                     opt.socket.c_str());
    } else if (opt.noPrefix) {
        std::fprintf(stderr, "evaluated cold (--no-prefix)\n");
    } else {
        std::fprintf(
            stderr,
            "prefix: %llu cells, %llu restored, %llu captured, "
            "%llu cold, %llu steps skipped\n",
            static_cast<unsigned long long>(prefix_stats.cells),
            static_cast<unsigned long long>(
                prefix_stats.prefixRestored),
            static_cast<unsigned long long>(
                prefix_stats.prefixCaptured),
            static_cast<unsigned long long>(prefix_stats.coldCells),
            static_cast<unsigned long long>(
                prefix_stats.stepsSkipped));
    }
    return 0;
}
