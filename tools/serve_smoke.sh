#!/bin/sh
# serve_smoke: end-to-end daemon check.
#
#   serve_smoke.sh <nsrf_serve binary> <nsrf_request binary>
#
# Boots the daemon on a temp socket with a disk cache, runs a cold
# batch (every cell simulated), re-runs the identical batch warm
# (every cell a cache hit, byte-identical output), asserts the hit
# counters, and shuts down gracefully.
set -u

serve="$1"
request="$2"
tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null
    rm -rf "$tmp"
}
trap cleanup EXIT
sock="$tmp/nsrf.sock"

"$serve" --socket "$sock" --cache "$tmp/cache" --jobs 2 \
    2>"$tmp/serve.log" &
pid=$!

up=0
i=0
while [ $i -lt 100 ]; do
    if "$request" --socket "$sock" --op ping >/dev/null 2>&1; then
        up=1
        break
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ $up -ne 1 ]; then
    echo "FAIL: daemon never answered ping"
    cat "$tmp/serve.log"
    exit 1
fi

# Cold batch: every cell simulated.
if ! "$request" --socket "$sock" --app all --events 20000 \
        >"$tmp/cold.out" 2>"$tmp/cold.err"; then
    echo "FAIL: cold submit failed"
    cat "$tmp/cold.err"
    exit 1
fi
if ! [ -s "$tmp/cold.out" ]; then
    echo "FAIL: cold submit produced no results"
    exit 1
fi

# Warm batch: the identical request must be served from the cache
# and print byte-identical results.
if ! "$request" --socket "$sock" --app all --events 20000 \
        >"$tmp/warm.out" 2>"$tmp/warm.err"; then
    echo "FAIL: warm submit failed"
    cat "$tmp/warm.err"
    exit 1
fi
if ! cmp -s "$tmp/cold.out" "$tmp/warm.out"; then
    echo "FAIL: warm output differs from cold"
    diff "$tmp/cold.out" "$tmp/warm.out" | head -5
    exit 1
fi

# Counters: the warm batch is all admission-level cache hits, and
# nothing was simulated twice.
stats=$("$request" --socket "$sock" --op stats | tr -d ' ')
hits=$(printf '%s' "$stats" |
    sed -n 's/.*"scheduler":{"hits":\([0-9]*\).*/\1/p')
sims=$(printf '%s' "$stats" |
    sed -n 's/.*"simulations":\([0-9]*\).*/\1/p')
cells=$(wc -l <"$tmp/cold.out")
if [ "$hits" != "$cells" ]; then
    echo "FAIL: expected $cells warm cache hits, got '$hits'"
    echo "$stats"
    exit 1
fi
if [ "$sims" != "$cells" ]; then
    echo "FAIL: expected $cells total simulations, got '$sims'"
    echo "$stats"
    exit 1
fi

# Graceful shutdown: ack, drain, exit 0.
"$request" --socket "$sock" --op shutdown >/dev/null
rc=0
wait "$pid" || rc=$?
pid=""
if [ $rc -ne 0 ]; then
    echo "FAIL: daemon exited with $rc"
    cat "$tmp/serve.log"
    exit 1
fi
echo "serve_smoke ok: $cells cells cold, $hits warm hits"
exit 0
